// Thread-block execution machine.
//
// Executes a SimProgram: a set of thread blocks, each running a straight-line
// sequence of primitive instructions, plus the transfer declarations those
// instructions realize. A transfer needs its sender-side and receiver-side
// instructions to rendezvous and its data dependencies (predecessor
// transfers of the same micro-batch) to complete before it can occupy the
// network; while blocked the TB accrues *sync* time — the busy-wait the
// paper charges against rigid TB allocation (§2.2, Fig. 2b).
//
// The machine is deliberately independent of the scheduler: backends lower
// their execution strategy (algorithm-, stage-, or task-level) into this one
// IR, so all three run on identical mechanics and differ only in program
// shape — exactly the comparison the paper draws.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/fluid.h"
#include "topology/topology.h"

namespace resccl {

class FaultPlan;

// One chunk movement between two GPUs for one micro-batch.
struct SimTransferDecl {
  Rank src = kInvalidRank;
  Rank dst = kInvalidRank;
  std::int64_t bytes = 0;
  bool is_reduce = false;           // receiver runs recvReduceCopy
  // Startup latency override in us; negative means "use the path's α
  // scaled by latency_scale". ResCCL's generated kernels run all
  // micro-batch invocations of one primitive in a single pass (§4.5), so
  // invocations after the first only pay a FIFO slot-sync, not the full
  // handshake; flag-based protocols (LL/LL128) scale the handshake down.
  // `latency_extra_us` is added on top of either branch: the protocol's
  // per-slot flag-synchronization cost for this invocation's wire bytes
  // (CostModel::SlotSyncCost), charged whether or not the α was overridden.
  double latency_us = -1.0;
  double latency_scale = 1.0;
  double latency_extra_us = 0.0;
  std::vector<int> deps;            // indices of transfers that must finish first
};

// One instruction in a TB's program.
struct SimInstr {
  enum class Kind : std::uint8_t { kSendSide, kRecvSide, kBarrier };
  Kind kind = Kind::kSendSide;
  int transfer = -1;                // for send/recv sides
  int barrier = -1;                 // for barriers
  SimTime overhead;                 // issue/decode cost paid before arrival
};

struct SimTb {
  Rank rank = kInvalidRank;
  int warps = 16;
  // Fraction of the TB's copy throughput available to data movement; an
  // interpreted runtime spends the rest on control flow (Fig. 3).
  double injection_scale = 1.0;
  std::vector<SimInstr> program;
};

struct SimProgram {
  std::vector<SimTransferDecl> transfers;
  std::vector<SimTb> tbs;
  std::vector<int> barrier_parties;  // barrier index -> participant count
};

struct TbStats {
  Rank rank = kInvalidRank;
  SimTime busy;        // transfers in flight (α + byte phase)
  SimTime sync;        // blocked on rendezvous / dependencies / barriers
  SimTime overhead;    // primitive issue + interpreter decode
  SimTime fault_stall; // injected straggler pauses (kept distinct from sync)
  SimTime finish;      // completion (= release) time of the TB's last instr
};

struct TransferStats {
  SimTime start;      // network occupation begins (after sync resolved)
  SimTime complete;
  // Attribution inputs for the observability layer (obs/critical_path.h):
  // who rendezvoused and when, the effective startup latency α (protocol-
  // scaled and fault-jittered), the bytes actually pushed onto the wire
  // (after reduce/protocol inflation), and the best rate the transfer could
  // have sustained alone — min(injection cap, unfaulted path bottleneck) in
  // bytes/us. Anything slower than that in the realized [start, complete]
  // span is contention (γ·L(z) sharing or fault capacity loss).
  int send_tb = -1;
  int recv_tb = -1;
  SimTime send_arrival;
  SimTime recv_arrival;
  SimTime latency;
  std::int64_t wire_bytes = 0;
  double ideal_rate = 0.0;
};

// What the machine observed when a run could make no further progress.
// The witness uses the shared wait-for vocabulary of sim/witness.h — the
// same one the static analyzer (analysis/analyzer.h) emits — so a dynamic
// deadlock can be diffed against a statically predicted one: one
// "; "-separated line per blocked TB naming the instruction it is parked on
// and the edge it waits across.
struct DeadlockReport {
  Status status;                     // kFailedPrecondition, full description
  std::string witness;               // per-TB wait-for lines
  std::vector<int> stuck_transfers;  // declarations that never completed
};

// Thrown by SimMachine::Run on deadlock. Derives std::runtime_error so
// legacy catch sites keep working; new callers can read the structured
// report.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(DeadlockReport report);
  [[nodiscard]] const DeadlockReport& report() const { return report_; }

 private:
  DeadlockReport report_;
};

struct SimRunReport {
  // One injected straggler pause, for trace export and fault accounting.
  struct StallSlice {
    int tb = 0;
    SimTime start;
    SimTime duration;
  };

  // One record per TB per barrier passage: when the TB parked and when the
  // barrier released everyone. The last arriver's park equals the release —
  // which is exactly how the critical-path analyzer identifies whom a
  // barrier wait should be blamed on.
  struct BarrierWait {
    int tb = 0;
    int barrier = 0;
    SimTime park;
    SimTime release;
  };

  // One contiguous span of one TB's lifetime. Only recorded with
  // set_observe(true); the machine emits them incrementally as events
  // resolve (transfer completion, barrier release, stall expiry), so the
  // critical-path analyzer (obs/critical_path.h) consumes them directly
  // instead of replaying the program. Per TB the spans are chronological,
  // zero-length spans are dropped, and the stored spans tile [0, finish]
  // exactly — the same contract the analyzer's replay fallback produces.
  struct TimelineSegment {
    enum class Kind : std::uint8_t { kOverhead, kSync, kInflight, kStall };
    Kind kind = Kind::kSync;
    bool is_send = false;
    int transfer = -1;  // inflight / transfer-sync / transfer-overhead spans
    int barrier = -1;   // barrier-sync spans
    SimTime begin;
    SimTime end;
  };

  SimTime makespan;
  std::vector<TbStats> tbs;
  std::vector<TransferStats> transfers;
  std::vector<StallSlice> stalls;  // empty on clean runs
  std::vector<BarrierWait> barrier_waits;
  std::vector<std::vector<TimelineSegment>> segments;  // per TB, observe only

  // Per-resource carried-bytes / busy-time totals, indexed by ResourceId.
  // Always recorded (one entry per topology resource).
  std::vector<FluidNetwork::ResourceUsage> link_usage;
  // Exact piecewise-constant aggregate-rate deltas per resource, only
  // recorded when SimMachine::set_observe(true) (obs/timeline.h replays
  // them into utilization timelines).
  std::vector<FluidNetwork::RateDelta> link_rates;

  // Event-loop accounting for the perf harness (bench/micro_sim): events
  // actually fired by the queue, and the fluid model's re-rate counters.
  // Both are fully deterministic for a given (program, faults) pair.
  std::uint64_t events = 0;
  FluidNetwork::Stats fluid;
  // Queue mechanics (heap pops, stale entries skipped, peak heap size) —
  // deterministic as well; surfaced as sim.events.* in the obs registry.
  EventQueue::Stats queue;

  // Per-TB idle fraction: sync / finish (§5.4's "idle ratio").
  [[nodiscard]] double AvgIdleRatio() const;
  [[nodiscard]] double MaxIdleRatio() const;
  // Mean busy fraction: busy / finish ("comm time" in Table 3).
  [[nodiscard]] double AvgBusyRatio() const;
};

class SimMachine {
 public:
  // `naive_rerate` selects the fluid model's reference re-rate walk
  // (fluid.h) — equal timing to relative fp tolerance but asymptotically
  // slower; it exists as the perf harness baseline.
  SimMachine(const Topology& topo, const CostModel& cost,
             bool naive_rerate = false);
  ~SimMachine();  // out-of-line: members hold nested types private to the .cc
  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

  // Arms the per-resource rate log for the next Run (SimRunReport::
  // link_rates). Everything else the observability layer needs — transfer
  // attribution fields, barrier waits, link usage totals — is recorded
  // unconditionally; the rate log is the only part with a per-event cost.
  void set_observe(bool on) { observe_ = on; }

  // Runs the program to completion. Throws DeadlockError (derived from
  // std::runtime_error) carrying a DeadlockReport if the program deadlocks
  // (a transfer never becomes eligible).
  // `faults` (optional, unowned, must outlive the call) perturbs this run
  // only: link capacity windows, latency jitter, and straggler stalls —
  // timing changes, never data movement.
  [[nodiscard]] SimRunReport Run(const SimProgram& program,
                                 const FaultPlan* faults = nullptr);

  // Allocation-free variant: assembles the report into `out`, reusing its
  // vectors' capacity, and reuses the machine's own event queue and fluid
  // network across calls (Reset, not reconstruction). After a warm-up run
  // of the same program shape, a RunInto performs no heap allocation with
  // observe off (tests/test_alloc_free.cc holds this under a counting
  // allocator). Run() forwards here with a fresh report.
  void RunInto(const SimProgram& program, const FaultPlan* faults,
               SimRunReport& out);

  // Resource accounting of the last Run (valid until the next Run).
  [[nodiscard]] const FluidNetwork& network() const;

 private:
  struct TransferState;
  struct TbState;
  struct BarrierState;

  void AdvanceTb(std::size_t tb, SimTime now);
  void Arrive(std::size_t tb, std::size_t instr, SimTime now);
  // Appends one timeline span to `tb`'s stream (observe mode); zero-length
  // spans are dropped, matching the analyzer's replay.
  void EmitSegment(std::size_t tb, SimRunReport::TimelineSegment::Kind kind,
                   SimTime begin, SimTime end, int transfer, int barrier,
                   bool is_send);
  void TryStart(std::size_t transfer, SimTime now);
  void OnTransferComplete(std::size_t transfer, SimTime now);
  void AccumulateBusy(std::size_t tb, SimTime start, SimTime end);
  void ReleaseTb(std::size_t tb, SimTime now);
  [[nodiscard]] DeadlockReport BuildDeadlockReport() const;

  const Topology& topo_;
  const CostModel& cost_;
  const SimProgram* program_ = nullptr;
  const FaultPlan* faults_ = nullptr;
  bool naive_rerate_ = false;

  std::optional<EventQueue> queue_;
  std::optional<FluidNetwork> net_;
  std::vector<TransferState> transfers_;
  // Dependent edges in CSR form: transfer t's dependents are
  // dep_edges_[dep_heads_[t] .. dep_heads_[t+1]) — one shared pool instead
  // of a heap vector per transfer (rebuilt per run, capacity reused).
  std::vector<std::uint32_t> dep_heads_;
  std::vector<std::int32_t> dep_edges_;
  std::vector<std::uint32_t> dep_fill_;  // build scratch
  std::vector<TbState> tbs_;
  std::vector<BarrierState> barriers_;
  std::vector<SimRunReport::StallSlice> stall_slices_;
  std::vector<SimRunReport::BarrierWait> barrier_waits_;
  // Incremental per-TB timeline (observe mode): spans are appended as their
  // resolving event fires and swapped into the report at the end.
  std::vector<std::vector<SimRunReport::TimelineSegment>> segments_;
  int unfinished_tbs_ = 0;
  bool observe_ = false;
};

}  // namespace resccl
