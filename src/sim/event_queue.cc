#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace resccl {

void EventQueue::Push(SimTime when, Slot slot, std::uint64_t generation,
                      Callback cb) {
  std::uint32_t entry;
  if (!free_entries_.empty()) {
    entry = free_entries_.back();
    free_entries_.pop_back();
  } else {
    entry = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[entry];
  e.slot = slot;
  e.generation = generation;
  e.cb = std::move(cb);
  if (slot != kNoSlot) slots_[slot].entry = entry;
  PushNode({when, MakeKey(NextSeq(), entry)});
}

void EventQueue::Schedule(SimTime when, Callback cb) {
  RESCCL_CHECK_MSG(when >= now_, "event scheduled in the past");
  Push(when, kNoSlot, 0, std::move(cb));
  ++size_;
}

EventQueue::Slot EventQueue::NewSlot() {
  if (!free_slots_.empty()) {
    const Slot slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].parked = 0;
    return slot;
  }
  slots_.emplace_back();
  return slots_.size() - 1;
}

void EventQueue::ScheduleSlot(Slot slot, SimTime when, Callback cb) {
  RESCCL_CHECK(slot < slots_.size());
  SlotState& st = slots_[slot];
  RESCCL_CHECK_MSG(st.parked == 0, "slot used after FreeSlot");
  RESCCL_CHECK_MSG(when >= now_, "event scheduled in the past");
  const std::uint64_t gen = ++st.generation;
  if (st.pending != 0) {
    // Reschedule: the slot's live node is re-keyed in place — new time,
    // fresh seq (a reschedule is a new insertion for FIFO tie-breaks) —
    // and sifted to its new position. No stale entry is left behind.
    const std::uint32_t entry = st.entry;
    Entry& e = entries_[entry];
    e.generation = gen;
    e.cb = std::move(cb);
    const std::size_t i = e.heap_pos;
    heap_[i].when = when;
    heap_[i].key = MakeKey(NextSeq(), entry);
    if (i > 0 && Before(heap_[i], heap_[(i - 1) >> 2])) {
      SiftUp(i);
    } else {
      SiftDown(i);
    }
    return;
  }
  Push(when, slot, gen, std::move(cb));
  st.pending = 1;
  ++size_;
}

void EventQueue::CancelSlot(Slot slot) {
  RESCCL_CHECK(slot < slots_.size());
  SlotState& st = slots_[slot];
  RESCCL_CHECK_MSG(st.parked == 0, "slot used after FreeSlot");
  ++st.generation;
  if (st.pending != 0) {
    st.pending = 0;
    --size_;
  }
}

void EventQueue::FreeSlot(Slot slot) {
  RESCCL_CHECK(slot < slots_.size());
  RESCCL_CHECK_MSG(slots_[slot].parked == 0, "slot freed twice");
  CancelSlot(slot);  // the generation bump kills any queued entry
  slots_[slot].parked = 1;
  free_slots_.push_back(slot);
}

void EventQueue::SiftUp(std::size_t i) {
  const HeapNode n = heap_[i];
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (!Before(n, heap_[p])) break;
    heap_[i] = heap_[p];
    entries_[KeyEntry(heap_[i].key)].heap_pos = static_cast<std::uint32_t>(i);
    i = p;
  }
  heap_[i] = n;
  entries_[KeyEntry(n.key)].heap_pos = static_cast<std::uint32_t>(i);
}

void EventQueue::SiftDown(std::size_t i) {
  const HeapNode n = heap_[i];
  const std::size_t count = heap_.size();
  for (;;) {
    const std::size_t c0 = 4 * i + 1;
    if (c0 >= count) break;
    std::size_t best = c0;
    const std::size_t cend = std::min(c0 + 4, count);
    for (std::size_t c = c0 + 1; c < cend; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], n)) break;
    heap_[i] = heap_[best];
    entries_[KeyEntry(heap_[i].key)].heap_pos = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = n;
  entries_[KeyEntry(n.key)].heap_pos = static_cast<std::uint32_t>(i);
}

void EventQueue::PushNode(HeapNode n) {
  const std::size_t i = heap_.size();
  heap_.push_back(n);
  entries_[KeyEntry(n.key)].heap_pos = static_cast<std::uint32_t>(i);
  SiftUp(i);
  if (heap_.size() > stats_.peak_heap) stats_.peak_heap = heap_.size();
}

void EventQueue::PopNode() {
  const HeapNode last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  heap_[0] = last;
  entries_[KeyEntry(last.key)].heap_pos = 0;
  SiftDown(0);
}

void EventQueue::DropStale() {
  while (!heap_.empty()) {
    const HeapNode top = heap_.front();
    const std::uint32_t te = KeyEntry(top.key);
    const Entry& e = entries_[te];
    if (e.slot == kNoSlot || slots_[e.slot].generation == e.generation) return;
    PopNode();
    ++stats_.popped;
    ++stats_.skipped_stale;
    entries_[te].cb = nullptr;
    free_entries_.push_back(te);
  }
}

bool EventQueue::PrepareHead() {
  for (;;) {
    DropStale();
    // The clock is about to advance past now_ (or the queue has drained):
    // let the advance hook flush work deferred within this timestamp. It
    // may schedule new events — possibly earlier than the current head —
    // so re-examine the queue whenever it reports progress.
    if (advance_hook_ && (heap_.empty() || heap_.front().when > now_)) {
      if (advance_hook_()) continue;
    }
    return !heap_.empty();
  }
}

void EventQueue::FireHead() {
  const HeapNode top = heap_.front();
  const std::uint32_t te = KeyEntry(top.key);
  PopNode();
  ++stats_.popped;
  Entry& e = entries_[te];
  if (e.slot != kNoSlot) slots_[e.slot].pending = 0;
  --size_;
  RESCCL_CHECK(top.when >= now_);
  now_ = top.when;
  // Copy the callback out and recycle the entry before firing: the
  // callback is free to schedule (and thereby claim the freed entry).
  Callback cb = std::move(e.cb);
  free_entries_.push_back(te);
  ++events_fired_;
  cb(now_);
}

bool EventQueue::RunOne() {
  if (!PrepareHead()) return false;
  FireHead();
  return true;
}

std::uint32_t EventQueue::RunBatch() {
  if (!PrepareHead()) return 0;
  const SimTime t = heap_.front().when;
  std::uint32_t fired = 0;
  for (;;) {
    FireHead();
    ++fired;
    // Callbacks may have queued more work at this same timestamp (it fires
    // in this batch, in insertion order) or invalidated entries at it.
    DropStale();
    if (heap_.empty() || heap_.front().when != t) return fired;
  }
}

void EventQueue::Reset() {
  heap_.clear();
  entries_.clear();  // inline trivial callbacks: destruction frees nothing
  free_entries_.clear();
  slots_.clear();
  free_slots_.clear();
  next_seq_ = 0;
  events_fired_ = 0;
  size_ = 0;
  now_ = SimTime::Zero();
  stats_ = {};
}

}  // namespace resccl
