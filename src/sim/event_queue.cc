#include "sim/event_queue.h"

#include <utility>

namespace resccl {

void EventQueue::Schedule(SimTime when, Callback cb) {
  RESCCL_CHECK_MSG(when >= now_, "event scheduled in the past");
  queue_.push(Entry{when, next_seq_++, kNoSlot, 0, std::move(cb)});
  ++size_;
}

EventQueue::Slot EventQueue::NewSlot() {
  if (!free_slots_.empty()) {
    const Slot slot = free_slots_.back();
    free_slots_.pop_back();
    slot_free_[slot] = false;
    return slot;
  }
  slot_generation_.push_back(0);
  slot_pending_.push_back(false);
  slot_free_.push_back(false);
  return slot_generation_.size() - 1;
}

void EventQueue::ScheduleSlot(Slot slot, SimTime when, Callback cb) {
  RESCCL_CHECK(slot < slot_generation_.size());
  RESCCL_CHECK_MSG(!slot_free_[slot], "slot used after FreeSlot");
  RESCCL_CHECK_MSG(when >= now_, "event scheduled in the past");
  const std::uint64_t gen = ++slot_generation_[slot];
  queue_.push(Entry{when, next_seq_++, slot, gen, std::move(cb)});
  if (!slot_pending_[slot]) {
    slot_pending_[slot] = true;
    ++size_;
  }
}

void EventQueue::CancelSlot(Slot slot) {
  RESCCL_CHECK(slot < slot_generation_.size());
  RESCCL_CHECK_MSG(!slot_free_[slot], "slot used after FreeSlot");
  ++slot_generation_[slot];
  if (slot_pending_[slot]) {
    slot_pending_[slot] = false;
    --size_;
  }
}

void EventQueue::FreeSlot(Slot slot) {
  RESCCL_CHECK(slot < slot_generation_.size());
  RESCCL_CHECK_MSG(!slot_free_[slot], "slot freed twice");
  CancelSlot(slot);  // the generation bump kills any queued entry
  slot_free_[slot] = true;
  free_slots_.push_back(slot);
}

bool EventQueue::RunOne() {
  for (;;) {
    // Drop stale entries — their slot was rescheduled or cancelled.
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (top.slot == kNoSlot || slot_generation_[top.slot] == top.generation)
        break;
      queue_.pop();
    }
    // The clock is about to advance past now_ (or the queue has drained):
    // let the advance hook flush work deferred within this timestamp. It
    // may schedule new events — possibly earlier than the current head —
    // so re-examine the queue whenever it reports progress.
    if (advance_hook_ && (queue_.empty() || queue_.top().when > now_)) {
      if (advance_hook_()) continue;
    }
    if (queue_.empty()) return false;
    // priority_queue::top is const; moving the callback out is safe because
    // the entry is popped immediately afterwards.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (e.slot != kNoSlot) slot_pending_[e.slot] = false;
    --size_;
    RESCCL_CHECK(e.when >= now_);
    now_ = e.when;
    ++events_fired_;
    e.cb(now_);
    return true;
  }
}

}  // namespace resccl
