#include "sim/event_queue.h"

#include <utility>

namespace resccl {

void EventQueue::Schedule(SimTime when, Callback cb) {
  RESCCL_CHECK_MSG(when >= now_, "event scheduled in the past");
  queue_.push(Entry{when, next_seq_++, kNoSlot, 0, std::move(cb)});
  ++size_;
}

EventQueue::Slot EventQueue::NewSlot() {
  slot_generation_.push_back(0);
  slot_pending_.push_back(false);
  return slot_generation_.size() - 1;
}

void EventQueue::ScheduleSlot(Slot slot, SimTime when, Callback cb) {
  RESCCL_CHECK(slot < slot_generation_.size());
  RESCCL_CHECK_MSG(when >= now_, "event scheduled in the past");
  const std::uint64_t gen = ++slot_generation_[slot];
  queue_.push(Entry{when, next_seq_++, slot, gen, std::move(cb)});
  if (!slot_pending_[slot]) {
    slot_pending_[slot] = true;
    ++size_;
  }
}

void EventQueue::CancelSlot(Slot slot) {
  RESCCL_CHECK(slot < slot_generation_.size());
  ++slot_generation_[slot];
  if (slot_pending_[slot]) {
    slot_pending_[slot] = false;
    --size_;
  }
}

bool EventQueue::RunOne() {
  while (!queue_.empty()) {
    // priority_queue::top is const; moving the callback out is safe because
    // the entry is popped immediately afterwards.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const bool live =
        e.slot == kNoSlot || slot_generation_[e.slot] == e.generation;
    if (!live) continue;  // stale entry — its slot was rescheduled/cancelled
    if (e.slot != kNoSlot) slot_pending_[e.slot] = false;
    --size_;
    RESCCL_CHECK(e.when >= now_);
    now_ = e.when;
    e.cb(now_);
    return true;
  }
  return false;
}

}  // namespace resccl
