// Fluid-flow network model.
//
// Active transfers are fluid flows over the topology's resource pools. Each
// flow's instantaneous rate is
//
//     rate(f) = min( cap(f),  min_{r ∈ path(f)}  capacity(r) / z(r) )
//               × 1 / (1 + γ·(z_max(f) − 1))
//
// where z(r) is the number of active flows on resource r, z_max(f) the
// maximum such count along f's path, and cap(f) the thread block's injection
// capability. Rates therefore depend only on per-resource counts, so when a
// flow starts or finishes only flows sharing one of its resources need a
// rate update — each update integrates the bytes moved at the old rate and
// reschedules the flow's completion event.
//
// The re-rate walk is incremental (docs/simulation_model.md, "Re-rate
// complexity"). Rates only matter once simulated time advances, so all
// count changes within one timestamp coalesce: flow starts and completions
// mark their resources dirty, and a single flush — driven by the event
// queue's advance hook just before the clock moves — re-rates the affected
// flows once. Within the flush, an epoch-stamped visited set considers each
// flow at most once, and an O(1) binding test per incidence proves most
// flows' rates unchanged without recomputing them: a flow is only re-rated
// if a dirty resource now constrains below its current rate, or could have
// been binding for it at some count the resource took during the timestamp.
// Skipped flows keep their queued completion events and defer integration
// to their next re-rate; that is exact, not an approximation, because a
// skipped flow's rate is constant over the deferred span. (Deferral does
// reassociate the floating-point partial sums, so the incremental path
// matches the naive reference walk to relative fp tolerance rather than
// bit-exactly; each path on its own stays fully deterministic.) Completed
// Flow entries and their event-queue slots recycle through free lists, so
// arbitrarily long simulations run in bounded memory with no steady-state
// allocation.
//
// The binding test's inputs are only the flow's current rate and whether it
// sits at its injection cap — so flows on one resource with bit-identical
// rate and the same cap-bound status are interchangeable, and the
// incremental walk *aggregates* them: each resource keeps its active flows
// bucketed by exact (rate, cap-bound) key, the flush's dirty-resource scan
// tests one bucket instead of each member, and a skipped bucket skips all
// its flows at once. On a rail-aligned fabric this is the difference
// between O(flows) and O(aggregates) per dirty trunk or spine link: the
// hundreds of same-(level, rail, direction) flows a hierarchical collective
// drives through a shared uplink land in a handful of buckets because the
// fair-share rate math gives symmetric flows bit-identical rates. The
// grouping is exact, not a heuristic — no rate is approximated; flows whose
// rates diverge (fault windows, asymmetric paths) just occupy more buckets,
// degrading gracefully toward the per-flow walk.
//
// Memory layout (docs/simulation_model.md, "Memory layout and allocation
// discipline"): flow state is struct-of-arrays. Per-flow path resources
// and bucket refs live in one shared CSR arena (sim/span_arena.h) as
// {begin, len} spans instead of per-flow heap vectors; the per-resource
// bucket-key index is an open-addressed flat table (sim/flat_map.h); the
// hot scalars (rate, remaining, last_update, span) are parallel arrays the
// flush walks contiguously. With RESCCL_FLUID_ORACLE defined, every flow
// additionally keeps the pre-SoA per-flow vectors as a mirror and the rate
// walk cross-checks the two layouts bit-exactly — the build-time oracle
// the arena property test runs under.
//
// With a FaultPlan attached, capacity(r) additionally carries the plan's
// time-varying degradation scale; flows crossing a fault-window boundary are
// re-rated at the boundary instead of waiting for their (now stale)
// completion event.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/inplace_function.h"
#include "common/types.h"
#include "common/units.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/flat_map.h"
#include "sim/span_arena.h"
#include "topology/topology.h"

namespace resccl {

class FaultPlan;

struct FlowTag {};
using FlowId = Id<FlowTag>;

class FluidNetwork {
 public:
  // Inline storage: completion callbacks ([this, transfer]-sized captures)
  // must never heap-allocate on the StartFlow path. Trivially-copyable so
  // recycling a completed flow's entry is a byte copy, not a manager call.
  using CompletionFn = TrivialInplaceFunction<void(SimTime now), 48>;

#if defined(RESCCL_FLUID_ORACLE)
  static constexpr bool kOracleEnabled = true;
#else
  static constexpr bool kOracleEnabled = false;
#endif

  // Re-rate accounting, monotonic over the network's lifetime. The perf
  // harness (bench/micro_sim) asserts the incremental walk's
  // recompute_calls stay well under the naive walk's on real workloads.
  struct Stats {
    std::uint64_t flows_started = 0;
    std::uint64_t flows_recycled = 0;  // entries reused from the free list
    std::uint64_t recompute_calls = 0;  // RecomputeFlow invocations
    std::uint64_t walk_visits = 0;  // O(1) binding tests: (resource, bucket)
                                    // in the aggregated incremental walk,
                                    // (resource, flow) in the naive walk
    std::uint64_t binding_skips = 0;  // flows proven unchanged w/o recompute
    std::uint64_t rate_unchanged_skips = 0;  // recomputed, rate identical
    std::uint64_t reschedules = 0;  // completion/wake events (re)queued
  };

  // `faults` (optional, unowned, must outlive the network) degrades
  // per-resource capacity over the plan's time windows. `naive_rerate`
  // selects the reference O(flows × path-length) re-rate walk (one full
  // recompute per shared (resource, flow) incidence, no skipping) — the
  // seed behavior, kept as the perf-harness baseline; the incremental walk
  // matches its timing to relative fp tolerance (see the header comment).
  FluidNetwork(const Topology& topo, const CostModel& cost, EventQueue& queue,
               const FaultPlan* faults = nullptr, bool naive_rerate = false);
  // Unregisters the advance hook; the queue must still be alive (declare
  // the network after the queue, or on the same scope below it).
  ~FluidNetwork();
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  // Returns the network to its just-constructed state under a (possibly
  // different) fault plan, keeping every warmed buffer's capacity — flow
  // arrays, span arena, bucket tables, scratch — so a reused network runs
  // the next same-shaped program without allocating. The caller must Reset
  // the event queue alongside (slots are not freed individually here).
  void Reset(const FaultPlan* faults);

  // Starts a flow of `bytes` over `path` with injection cap `cap`;
  // `on_complete` fires exactly once, when the last byte drains. The
  // path's resource list is copied into the flow (the caller's Path only
  // needs to outlive this call). Returned FlowIds are recycled after the
  // flow completes — they stay valid for FlowRate only until then.
  FlowId StartFlow(const Path& path, std::int64_t bytes, Bandwidth cap,
                   CompletionFn on_complete);

  // Diagnostics for tests: current rate in bytes/us (0 if finished).
  [[nodiscard]] double FlowRate(FlowId id) const;
  [[nodiscard]] int ActiveFlowCount() const { return active_count_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Arena accounting for the property tests: pool cells and live spans.
  [[nodiscard]] const PathSpanArena& arena() const { return arena_; }

  // Per-resource accounting, used for link-utilization metrics.
  struct ResourceUsage {
    std::int64_t bytes = 0;     // total bytes carried
    SimTime active;             // total time with >= 1 active flow
  };
  [[nodiscard]] const ResourceUsage& usage(ResourceId r) const {
    return usage_[static_cast<std::size_t>(r.value)];
  }
  [[nodiscard]] std::span<const ResourceUsage> all_usage() const {
    return usage_;
  }

  // One aggregate-rate change on one resource: at time `t` the summed flow
  // rate through `resource` moved by `delta` bytes/us. Because rates are
  // piecewise constant between changes, replaying the deltas in order
  // reconstructs each resource's exact utilization timeline (obs/timeline.h)
  // — no sampling involved. Entries are globally time-ordered (simulated
  // time is monotonic) and deltas for one flow telescope to zero by its
  // completion.
  struct RateDelta {
    SimTime t;
    ResourceId resource;
    double delta = 0.0;  // bytes/us
  };
  // Off by default (zero cost: one branch per re-rate). Arm before the
  // first StartFlow; the log only records changes from then on.
  void EnableRateLog() { rate_log_enabled_ = true; }
  [[nodiscard]] std::vector<RateDelta> TakeRateLog() {
    return std::move(rate_log_);
  }

  // Structural invariants of the SoA layout, checked in O(live state):
  // every active flow's span in bounds, every bucket ref pointing at a
  // bucket that lists the flow at that position, bucket key index
  // consistent with bucket contents. Test hook (throws via RESCCL_CHECK);
  // not called on any hot path.
  void DebugValidate() const;

 private:
  using FlowIndex = std::uint32_t;

  // One aggregate: the flows on one resource sharing a bit-identical rate
  // and cap-bound status. The flush's binding test runs once per bucket;
  // `max_reseq` is the conservative max over members' reseq (monotonic
  // while the bucket lives — a stale high value only widens the test).
  struct Bucket {
    double rate = 0.0;
    bool capped = false;  // every member at its injection cap
    std::uint64_t max_reseq = 0;
    std::vector<FlowIndex> flows;
  };

  // Per-resource bucket table. Bucket indices are stable (a free list
  // recycles emptied slots), so BucketRefs stay valid while the table
  // grows; `by_key` maps the exact (rate bits, cap-bound) key to its
  // bucket. Iteration for the flush scan is over the dense `buckets`
  // vector, never the map — deterministic order, replay-stable.
  struct ResourceBuckets {
    std::vector<Bucket> buckets;
    std::vector<std::uint32_t> free;
    FlatMap64 by_key;
  };

  // Flow state, struct-of-arrays: parallel vectors indexed by flow id. The
  // flush's hot reads (rate, visit_stamp, span) sit in their own dense
  // arrays; the path itself lives in the shared CSR arena. Cold per-flow
  // state (the completion callback) stays out of the hot lanes.
  struct FlowSoA {
    std::vector<PathSpanArena::Span> span;
    std::vector<double> remaining;      // bytes
    std::vector<double> rate;           // bytes/us
    std::vector<double> cap;            // bytes/us
    std::vector<SimTime> last_update;
    std::vector<EventQueue::Slot> slot;
    std::vector<std::uint64_t> reseq;   // recompute seq of the last re-rate
    std::vector<std::uint64_t> visit_stamp;  // epoch of last flush visit
    std::vector<std::uint8_t> active;
    std::vector<CompletionFn> on_complete;
#if defined(RESCCL_FLUID_ORACLE)
    // Pre-SoA mirror: the per-flow heap vectors the arena replaced. The
    // oracle build maintains them in lockstep and cross-checks every walk.
    struct OracleFlow {
      std::vector<ResourceId> resources;
      std::vector<BucketRef> bucket_refs;
    };
    std::vector<OracleFlow> oracle;
#endif

    [[nodiscard]] std::size_t size() const { return rate.size(); }
    void PushDefault();
    void Clear();
  };

  // One dirty resource within the current timestamp: the count it had
  // before the first change (z_first) and the range of counts it took
  // ([z_lo, z_hi], covering pre- and post-change values). The flush's
  // binding test uses z_first for flows rated before the batch and the
  // range for flows rated mid-batch.
  struct Mark {
    std::size_t ri;
    int z_first;
    int z_lo;
    int z_hi;
  };

  // Scratch for one RecomputeAffected invocation. Held in a deque indexed
  // by recursion depth (completion callbacks can start flows, nesting
  // walks) so references stay stable and capacity is reused — the walk
  // allocates nothing in steady state.
  struct WalkScratch {
    std::vector<ResourceId> resources;   // stable copy of the trigger path
    std::vector<FlowIndex> affected;     // deduped flow indices to re-rate
  };

  [[nodiscard]] std::span<const ResourceId> PathOf(FlowIndex index) const {
    return arena_.resources(flows_.span[index]);
  }

  void UpdateResourceCounts(std::span<const ResourceId> resources, int delta,
                            SimTime now);
  // Naive reference walk only; the incremental path defers to FlushDeferred.
  void RecomputeAffected(std::span<const ResourceId> resources, SimTime now);
  // Aggregated incremental mode: (re)files the flow under the bucket
  // matching its current rate on every path resource / unfiles it (on
  // completion or before a rate change refiles it).
  void InsertIntoBuckets(FlowIndex index);
  void RemoveFromBuckets(FlowIndex index);
  // Rate-unchanged skips still advance the flow's reseq; its buckets'
  // max_reseq must follow for the flush's mid-batch classification.
  void BumpBucketReseq(FlowIndex index);
  [[nodiscard]] static std::uint64_t BucketKey(double rate, bool capped);
  // Records a count change on one resource for the pending flush batch.
  void MarkResource(std::size_t ri, int z_before, int z_after);
  // Re-rates everything affected by the pending batch; returns true if it
  // did any work. Loops until clean: re-rates can complete flows whose
  // callbacks start new ones, all still at the current timestamp.
  bool FlushDeferred();
  void RecomputeFlow(FlowIndex index, SimTime now, bool allow_skip);
  void Complete(FlowIndex index, SimTime now);
  void LogRateChange(FlowIndex index, SimTime now, double delta);
  [[nodiscard]] double ResourceShare(ResourceId r, int z, SimTime now) const;
  [[nodiscard]] double CurrentRate(FlowIndex index, SimTime now) const;
  [[nodiscard]] SimTime NextFaultTransition(FlowIndex index,
                                            SimTime now) const;
#if defined(RESCCL_FLUID_ORACLE)
  // Rate recomputed over the pre-SoA mirror's own vectors; the SoA walk
  // must match it bit-exactly (checked at every CurrentRate call).
  [[nodiscard]] double OracleRate(FlowIndex index, SimTime now) const;
  void OracleCheckRefs(FlowIndex index) const;
#endif

  const Topology& topo_;
  const CostModel& cost_;
  EventQueue& queue_;
  const FaultPlan* faults_ = nullptr;
  FlowSoA flows_;
  PathSpanArena arena_;                              // path + bucket-ref CSR
  std::vector<FlowIndex> free_flows_;                // recyclable entries
  std::vector<int> resource_active_;                 // per-resource flow count
  // Per-resource active flow ids — naive reference mode only; the
  // aggregated incremental mode tracks membership via resource_buckets_.
  std::vector<std::vector<FlowIndex>> resource_flows_;
  std::vector<ResourceBuckets> resource_buckets_;    // incremental mode only
  std::vector<ResourceUsage> usage_;
  std::vector<SimTime> resource_busy_since_;
  // Last (count → share) computed per resource, valid only in the
  // fault-free mode (shares there are pure in (resource, count)). Written
  // from the logically-const ResourceShare; never needs invalidation — the
  // topology is fixed for the network's lifetime.
  mutable std::vector<int> share_cache_z_;
  mutable std::vector<double> share_cache_val_;
  std::deque<WalkScratch> walk_scratch_;
  std::size_t walk_depth_ = 0;
  std::uint64_t visit_epoch_ = 0;
  // Deferred re-rate state (incremental mode). pending_marks_ accumulates
  // dirty resources for the current timestamp; mark_stamp_/mark_index_
  // dedup marks per resource (epoch-guarded, no clearing pass);
  // pending_forced_ holds flows started this timestamp, which have no rate
  // yet and must be rated at flush regardless of the binding test.
  std::vector<Mark> pending_marks_;
  std::vector<FlowIndex> pending_forced_;
  std::vector<std::uint64_t> mark_stamp_;
  std::vector<std::size_t> mark_index_;
  std::uint64_t mark_epoch_ = 1;
  std::uint64_t recompute_seq_ = 0;
  std::uint64_t batch_start_seq_ = 0;  // recompute_seq_ when batch opened
  std::vector<Mark> flush_marks_;              // flush scratch (reused)
  std::vector<FlowIndex> flush_forced_;        // flush scratch (reused)
  std::vector<FlowIndex> flush_affected_;      // flush scratch (reused)
  bool in_flush_ = false;
  int active_count_ = 0;
  bool naive_rerate_ = false;
  bool rate_log_enabled_ = false;
  std::vector<RateDelta> rate_log_;
  Stats stats_;
};

}  // namespace resccl
