// Fluid-flow network model.
//
// Active transfers are fluid flows over the topology's resource pools. Each
// flow's instantaneous rate is
//
//     rate(f) = min( cap(f),  min_{r ∈ path(f)}  capacity(r) / z(r) )
//               × 1 / (1 + γ·(z_max(f) − 1))
//
// where z(r) is the number of active flows on resource r, z_max(f) the
// maximum such count along f's path, and cap(f) the thread block's injection
// capability. Rates therefore depend only on per-resource counts, so when a
// flow starts or finishes only flows sharing one of its resources need a
// rate update — each update integrates the bytes moved at the old rate and
// reschedules the flow's completion event.
//
// With a FaultPlan attached, capacity(r) additionally carries the plan's
// time-varying degradation scale; flows crossing a fault-window boundary are
// re-rated at the boundary instead of waiting for their (now stale)
// completion event.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "topology/topology.h"

namespace resccl {

class FaultPlan;

struct FlowTag {};
using FlowId = Id<FlowTag>;

class FluidNetwork {
 public:
  using CompletionFn = std::function<void(SimTime now)>;

  // `faults` (optional, unowned, must outlive the network) degrades
  // per-resource capacity over the plan's time windows.
  FluidNetwork(const Topology& topo, const CostModel& cost, EventQueue& queue,
               const FaultPlan* faults = nullptr);

  // Starts a flow of `bytes` over `path` with injection cap `cap`;
  // `on_complete` fires exactly once, when the last byte drains.
  FlowId StartFlow(const Path& path, std::int64_t bytes, Bandwidth cap,
                   CompletionFn on_complete);

  // Diagnostics for tests: current rate in bytes/us (0 if finished).
  [[nodiscard]] double FlowRate(FlowId id) const;
  [[nodiscard]] int ActiveFlowCount() const { return active_count_; }

  // Per-resource accounting, used for link-utilization metrics.
  struct ResourceUsage {
    std::int64_t bytes = 0;     // total bytes carried
    SimTime active;             // total time with >= 1 active flow
  };
  [[nodiscard]] const ResourceUsage& usage(ResourceId r) const {
    return usage_[static_cast<std::size_t>(r.value)];
  }

 private:
  struct Flow {
    const Path* path = nullptr;
    double remaining = 0.0;   // bytes
    double rate = 0.0;        // bytes/us
    double cap = 0.0;         // bytes/us
    SimTime last_update;
    EventQueue::Slot slot = 0;
    CompletionFn on_complete;
    bool active = false;
  };

  void UpdateResourceCounts(const Flow& f, int delta, SimTime now);
  void RecomputeAffected(const Path& path, SimTime now);
  void RecomputeFlow(std::size_t index, SimTime now);
  void Complete(std::size_t index, SimTime now);
  [[nodiscard]] double CurrentRate(const Flow& f, SimTime now) const;
  [[nodiscard]] SimTime NextFaultTransition(const Flow& f, SimTime now) const;

  const Topology& topo_;
  const CostModel& cost_;
  EventQueue& queue_;
  const FaultPlan* faults_ = nullptr;
  std::vector<Flow> flows_;
  std::vector<int> resource_active_;                 // per-resource flow count
  std::vector<std::vector<std::size_t>> resource_flows_;  // active flow ids
  std::vector<ResourceUsage> usage_;
  std::vector<SimTime> resource_busy_since_;
  int active_count_ = 0;
};

}  // namespace resccl
