// CSR-style span arena for per-flow path state.
//
// Every fluid flow carries two parallel per-resource lists: the path's
// ResourceIds (immutable for the flow's lifetime) and, in the aggregated
// incremental mode, one BucketRef per resource saying where the flow sits
// in that resource's bucket table. Keeping those in per-flow std::vectors
// means two heap blocks per flow and a pointer chase per re-rate walk; at
// 1024 ranks the walk's working set scatters across ~10^5 tiny allocations
// and the simulator becomes memory-bound (the BENCH_scale.json scale
// degradation this layer exists to fix).
//
// The arena replaces them with two shared pools and a {begin, len} span per
// flow — the classic CSR layout. Allocation is bump-or-recycle: spans of
// equal length recycle through size-class free lists (paths are short and
// a workload uses a handful of distinct lengths), so steady-state flow
// churn allocates nothing and the pools stop growing at the peak live
// footprint. The re-rate walk then iterates contiguous memory.
//
// Not thread-safe; owned by one FluidNetwork. Validation hooks expose the
// internals read-only so the randomized property test
// (tests/test_flow_arena_property.cc) can assert span integrity and
// free-list bounds without friend access.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "topology/topology.h"

namespace resccl {

// Where one flow sits inside one resource's bucket table: bucket index and
// position within the bucket's member list (sim/fluid.h).
struct BucketRef {
  std::uint32_t bucket = 0;
  std::uint32_t pos = 0;
};

class PathSpanArena {
 public:
  struct Span {
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
  };

  // Copies `path` into the pool and returns its span. The parallel
  // bucket-ref lane is left stale — callers rewrite it before reading
  // (InsertIntoBuckets always runs before any bucket walk).
  [[nodiscard]] Span Allocate(std::span<const ResourceId> path) {
    const auto len = static_cast<std::uint32_t>(path.size());
    Span s{0, len};
    if (len < free_.size() && !free_[len].empty()) {
      s.begin = free_[len].back();
      free_[len].pop_back();
      std::copy(path.begin(), path.end(),
                resources_.begin() + static_cast<std::ptrdiff_t>(s.begin));
    } else {
      s.begin = static_cast<std::uint32_t>(resources_.size());
      resources_.insert(resources_.end(), path.begin(), path.end());
      refs_.resize(resources_.size());
    }
    ++live_spans_;
    return s;
  }

  // Parks the span on its size-class free list. The span must have come
  // from Allocate and must not be released twice (the property test checks
  // the global accounting that a double release would corrupt).
  void Release(Span s) {
    RESCCL_CHECK(SpanInBounds(s));
    RESCCL_CHECK(live_spans_ > 0);
    if (free_.size() <= s.len) free_.resize(s.len + 1);
    free_[s.len].push_back(s.begin);
    --live_spans_;
  }

  [[nodiscard]] std::span<const ResourceId> resources(Span s) const {
    return {resources_.data() + s.begin, s.len};
  }
  [[nodiscard]] std::span<BucketRef> bucket_refs(Span s) {
    return {refs_.data() + s.begin, s.len};
  }
  [[nodiscard]] std::span<const BucketRef> bucket_refs(Span s) const {
    return {refs_.data() + s.begin, s.len};
  }

  // Forgets every span while keeping pool and free-list capacity; all
  // outstanding spans become invalid.
  void Reset() {
    resources_.clear();
    refs_.clear();
    for (std::vector<std::uint32_t>& f : free_) f.clear();
    live_spans_ = 0;
  }

  // --- Validation surface (tests only; all read-only). -------------------
  [[nodiscard]] std::size_t pool_size() const { return resources_.size(); }
  [[nodiscard]] std::uint64_t live_spans() const { return live_spans_; }
  [[nodiscard]] bool SpanInBounds(Span s) const {
    return static_cast<std::size_t>(s.begin) + s.len <= resources_.size();
  }
  // Total pool cells currently parked on free lists. Live span cells plus
  // free cells can undercount pool_size only by the cells of spans whose
  // size class was never recycled — never overcount; the property test
  // asserts the exact balance.
  [[nodiscard]] std::size_t FreeCells() const {
    std::size_t cells = 0;
    for (std::size_t len = 0; len < free_.size(); ++len) {
      cells += free_[len].size() * len;
    }
    return cells;
  }
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& free_lists()
      const {
    return free_;
  }

 private:
  std::vector<ResourceId> resources_;
  std::vector<BucketRef> refs_;  // parallel lane, same indexing
  std::vector<std::vector<std::uint32_t>> free_;  // [len] -> span begins
  std::uint64_t live_spans_ = 0;
};

}  // namespace resccl
