#include "sim/faults.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace resccl {

namespace {

// Salts separating the independent random streams of one seed.
constexpr std::uint64_t kPlanSalt = 0x6661756c7470616eULL;    // "faultpan"
constexpr std::uint64_t kStallSalt = 0x7374616c6c2e2e2eULL;   // "stall..."
constexpr std::uint64_t kJitterSalt = 0x6a69747465722e2eULL;  // "jitter.."

// A degraded resource never drops below this fraction of its capacity, so
// flows keep draining and the starvation check in the fluid model holds.
constexpr double kMinCapacityScale = 0.05;

}  // namespace

std::uint64_t FaultPlan::SubSeed(std::uint64_t salt,
                                 std::uint64_t index) const {
  Rng outer(seed_ + 0x9e3779b97f4a7c15ULL * salt);
  Rng inner(outer.NextU64() + index);
  return inner.NextU64();
}

FaultPlan FaultPlan::Make(std::uint64_t seed, double intensity,
                          const Topology& topo) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.intensity_ = std::clamp(intensity, 0.0, 1.0);
  if (plan.intensity_ <= 0.0) return plan;
  const double level = plan.intensity_;

  Rng rng(plan.SubSeed(kPlanSalt, 0));
  const auto nresources = static_cast<int>(topo.resources().size());

  // (a) Cluster-wide brown-out: every resource persistently loses a slice of
  // its capacity, serializing resources (NICs, trunks) more than the
  // near-free NVSwitch crossbars. This always-on component dominates the
  // perturbation so faulted makespans degrade monotonically with intensity.
  for (int r = 0; r < nresources; ++r) {
    const Resource& res = topo.resource(ResourceId(r));
    const bool serializing = IsSerializing(res.kind);
    const double depth = serializing ? 0.25 + 0.25 * rng.NextDouble()
                                     : 0.10 + 0.15 * rng.NextDouble();
    plan.AddLinkFault({ResourceId(r), SimTime::Zero(), SimTime::Infinity(),
                       std::max(kMinCapacityScale, 1.0 - level * depth)});
  }

  // (b) Windowed deep faults: a few resources additionally collapse for a
  // bounded interval — a flapping link or a transient incast.
  const int nwindows = 1 + static_cast<int>(level * 3.0);
  for (int k = 0; k < nwindows; ++k) {
    const auto r = static_cast<std::int32_t>(rng.NextInt(0, nresources - 1));
    const SimTime start = SimTime::Us(rng.NextDouble() * 2000.0);
    const SimTime length = SimTime::Us(200.0 + rng.NextDouble() * 5000.0);
    const double depth = level * (0.5 + 0.4 * rng.NextDouble());
    plan.AddLinkFault({ResourceId(r), start, start + length,
                       std::max(kMinCapacityScale, 1.0 - depth)});
  }

  // (c) Stragglers and (d) latency jitter scale with intensity.
  plan.SetStragglers(0.15 * level, SimTime::Us(50.0 + 400.0 * level));
  plan.SetLatencyJitter(0.30 * level, 1.5 * level);
  return plan;
}

void FaultPlan::AddLinkFault(const LinkFault& fault) {
  RESCCL_CHECK_MSG(fault.resource.valid(), "link fault needs a resource");
  RESCCL_CHECK_MSG(fault.capacity_scale > 0.0 && fault.capacity_scale <= 1.0,
                   "capacity scale must be in (0, 1]");
  RESCCL_CHECK_MSG(fault.start < fault.end, "empty fault window");
  const auto ri = static_cast<std::size_t>(fault.resource.value);
  if (faults_by_resource_.size() <= ri) faults_by_resource_.resize(ri + 1);
  faults_by_resource_[ri].push_back(static_cast<int>(link_faults_.size()));
  link_faults_.push_back(fault);
}

void FaultPlan::SetStragglers(double probability, SimTime max_stall) {
  straggler_prob_ = std::clamp(probability, 0.0, 1.0);
  max_stall_ = max_stall;
}

void FaultPlan::SetLatencyJitter(double probability,
                                 double max_extra_fraction) {
  jitter_prob_ = std::clamp(probability, 0.0, 1.0);
  max_jitter_extra_ = std::max(0.0, max_extra_fraction);
}

const std::vector<int>* FaultPlan::FaultsOn(ResourceId r) const {
  const auto ri = static_cast<std::size_t>(r.value);
  if (ri >= faults_by_resource_.size()) return nullptr;
  const std::vector<int>& list = faults_by_resource_[ri];
  return list.empty() ? nullptr : &list;
}

double FaultPlan::CapacityScaleAt(ResourceId r, SimTime now) const {
  const std::vector<int>* list = FaultsOn(r);
  if (list == nullptr) return 1.0;
  double scale = 1.0;
  for (int i : *list) {
    const LinkFault& f = link_faults_[static_cast<std::size_t>(i)];
    if (f.start <= now && now < f.end) scale *= f.capacity_scale;
  }
  return std::max(scale, kMinCapacityScale);
}

SimTime FaultPlan::NextTransitionAfter(ResourceId r, SimTime now) const {
  const std::vector<int>* list = FaultsOn(r);
  SimTime next = SimTime::Infinity();
  if (list == nullptr) return next;
  for (int i : *list) {
    const LinkFault& f = link_faults_[static_cast<std::size_t>(i)];
    if (f.start > now) next = std::min(next, f.start);
    if (!f.end.is_infinite() && f.end > now) next = std::min(next, f.end);
  }
  return next;
}

FaultPlan::Stall FaultPlan::StallFor(int tb_index, int ninstrs) const {
  Stall stall;
  if (straggler_prob_ <= 0.0 || ninstrs <= 0) return stall;
  Rng rng(SubSeed(kStallSalt, static_cast<std::uint64_t>(tb_index)));
  if (!rng.NextBool(straggler_prob_)) return stall;
  stall.before_instr = static_cast<int>(rng.NextInt(0, ninstrs - 1));
  stall.duration = max_stall_ * (0.25 + 0.75 * rng.NextDouble());
  return stall;
}

double FaultPlan::LatencyScale(int transfer_index) const {
  if (jitter_prob_ <= 0.0) return 1.0;
  Rng rng(SubSeed(kJitterSalt, static_cast<std::uint64_t>(transfer_index)));
  if (!rng.NextBool(jitter_prob_)) return 1.0;
  return 1.0 + max_jitter_extra_ * rng.NextDouble();
}

}  // namespace resccl
