// Discrete-event queue with cancellation.
//
// The fluid link model reschedules a flow's completion every time the set of
// flows sharing one of its resources changes — on contended workloads more
// than a third of all scheduling traffic is reschedules. The queue is tuned
// for that profile:
//
//  - The heap orders 24-byte {when, seq, entry} nodes in a 4-ary layout —
//    shallower than a binary heap and ~2.5 nodes per cache line, so a pop's
//    sift-down touches a fraction of the lines std::priority_queue moves
//    when the element carries its callback along. Callbacks live in a
//    side pool of recycled entries, touched exactly once per pop.
//  - The heap is *indexed*: each pooled entry tracks its node's heap
//    position, so rescheduling a slot re-keys its existing node in place
//    (one sift) instead of pushing a replacement and popping the stale one
//    later. Cancellation stays lazy — a generation bump — since cancelled
//    slots are rare next to reschedules; their orphaned nodes are skipped
//    on pop.
//  - Callbacks are TrivialInplaceFunction, not std::function: the machine's
//    [this, transfer, bytes]-style captures exceed libstdc++'s 16-byte SBO
//    and would heap-allocate per Schedule; inline trivially-copyable
//    storage makes scheduling allocation-free AND recycles pool entries
//    without indirect manager calls (the queue moves callbacks ~2x more
//    often than it fires them).
//  - RunBatch() drains every event sharing the front timestamp in one call:
//    the advance hook (the fluid model's deferred re-rate flush, keyed on
//    distinct SimTime) is consulted once per distinct timestamp instead of
//    once per event.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/inplace_function.h"
#include "common/units.h"

namespace resccl {

class EventQueue {
 public:
  // Sized for the simulator's largest capture set plus headroom; anything
  // bigger — or any capture that isn't trivially copyable — fails to
  // compile rather than silently allocating.
  using Callback = TrivialInplaceFunction<void(SimTime now), 48>;

  // Queue-mechanics accounting over the queue's lifetime (reset by Reset):
  // heap pops split into fired callbacks and lazily-invalidated entries
  // dropped (orphans of CancelSlot/FreeSlot — reschedules re-key in place
  // and leave none), plus the peak number of resident entries. Surfaced as
  // sim.events.{popped,skipped_stale,peak_heap} (docs/observability.md).
  struct Stats {
    std::uint64_t popped = 0;         // heap pops: fired + stale
    std::uint64_t skipped_stale = 0;  // entries dropped by lazy invalidation
    std::uint64_t peak_heap = 0;      // max entries resident at once
  };

  // Immediately schedules `cb` at `when` (must be >= now). Events at equal
  // times fire in insertion order, keeping the simulation deterministic.
  void Schedule(SimTime when, Callback cb);

  // Handle-based scheduling for cancellable events. `slot` identifies a
  // logical event source (e.g. a flow); rescheduling a slot supersedes any
  // previously scheduled entry for it (re-keyed in place on the heap).
  //
  // Slots are recycled: NewSlot prefers handles released via FreeSlot over
  // growing the generation table, so long-running simulations that churn
  // through short-lived event sources (e.g. millions of fluid flows) keep a
  // bounded slot table. A slot's generation counter survives recycling —
  // it only ever increments — so entries queued by a previous owner can
  // never fire for the new one.
  using Slot = std::size_t;
  [[nodiscard]] Slot NewSlot();
  void ScheduleSlot(Slot slot, SimTime when, Callback cb);
  void CancelSlot(Slot slot);
  // Cancels any pending entry and returns the slot to the free list. The
  // handle must not be used again until NewSlot hands it back out
  // (checked), and must not be freed twice (checked).
  void FreeSlot(Slot slot);

  // Pops and fires the next event; returns false when the queue is empty.
  bool RunOne();

  // Advances the clock to the next event time and fires *every* event
  // scheduled there (including events its callbacks add at that same time),
  // in insertion order — identical semantics to calling RunOne in a loop,
  // but the advance hook runs once per distinct timestamp instead of being
  // re-checked per event. Returns the number of callbacks fired; 0 means
  // the queue has drained.
  std::uint32_t RunBatch();

  // Returns the queue to its just-constructed state — clock at zero, no
  // events, no slots, counters cleared — while keeping every buffer's
  // capacity (heap, entry pool, slot tables), so a warmed queue re-runs a
  // same-shaped program without allocating. The advance hook survives.
  void Reset();

  // Installed by a component that defers work within a timestamp (the fluid
  // model coalesces re-rate walks this way). RunOne/RunBatch invoke the
  // hook whenever the clock is about to advance past `now()` — including
  // when the queue has drained — and the hook returns true if it did work
  // (it may have scheduled new events, possibly earlier than the current
  // head); the queue then re-examines its head. A hook with nothing pending
  // must return false or the pop would spin.
  using AdvanceHook = TrivialInplaceFunction<bool(), 16>;
  void SetAdvanceHook(AdvanceHook hook) { advance_hook_ = std::move(hook); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] SimTime now() const { return now_; }
  // Size of the slot table ever allocated (recycled handles included);
  // exposed so tests can assert the free list bounds growth.
  [[nodiscard]] std::size_t allocated_slots() const { return slots_.size(); }
  // Callbacks actually fired over the queue's lifetime (stale slot entries
  // skipped by lazy invalidation are not counted). The perf harness
  // divides this by wall-clock for its events/sec throughput metric.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // What the heap orders: two words. `key` packs the push sequence number
  // (high 32 bits — the FIFO tie-break at equal times) over the entry-pool
  // index (low 32 bits; never decides an ordering, since sequence numbers
  // are unique). 16-byte nodes put four per cache line, so a sift-down's
  // child scan stays within one line. The callback (and the slot
  // bookkeeping needed only at pop time) lives in the entry pool.
  struct HeapNode {
    SimTime when;
    std::uint64_t key;
  };
  static constexpr std::uint64_t MakeKey(std::uint64_t seq,
                                         std::uint32_t entry) {
    return (seq << 32) | entry;
  }
  static constexpr std::uint32_t KeyEntry(std::uint64_t key) {
    return static_cast<std::uint32_t>(key);
  }
  struct Entry {
    Slot slot = 0;              // kNoSlot for one-shot events
    std::uint64_t generation = 0;  // must match slot generation to be live
    std::uint32_t heap_pos = 0;    // node's index in heap_ while queued
    Callback cb;
  };
  static constexpr Slot kNoSlot = static_cast<Slot>(-1);

  static bool Before(const HeapNode& a, const HeapNode& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.key < b.key;
  }

  // Sequence numbers share their word with the entry index, capping one
  // queue lifetime (between Resets) at 2^32 pushes — loud, not silent.
  std::uint64_t NextSeq() {
    RESCCL_CHECK_MSG(next_seq_ < (std::uint64_t{1} << 32),
                     "event sequence space exhausted (2^32 pushes)");
    return next_seq_++;
  }

  void Push(SimTime when, Slot slot, std::uint64_t generation, Callback cb);
  void PushNode(HeapNode n);
  void PopNode();  // removes heap_[0]
  // Restore heap order for the node at `i` after its key changed; every
  // node moved has its entry's heap_pos updated.
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  // Drops stale entries off the front; counts them as popped + skipped.
  void DropStale();
  // Skip stale + run the advance hook until a live head exists (or the
  // queue is truly drained). Returns whether a live head exists.
  bool PrepareHead();
  // Fires heap_[0], which must be live; advances the clock to its time.
  void FireHead();

  // All per-slot bookkeeping in one 16-byte record, so a reschedule's
  // generation bump + pending test + entry lookup hit a single cache line.
  struct SlotState {
    std::uint64_t generation = 0;
    std::uint32_t entry = 0;     // the live queued entry, valid when pending
    std::uint8_t pending = 0;    // slot has a live queued entry
    std::uint8_t parked = 0;     // slot is on the free list
  };

  std::vector<HeapNode> heap_;             // 4-ary min-heap
  std::vector<Entry> entries_;             // side pool, index-stable
  std::vector<std::uint32_t> free_entries_;
  std::vector<SlotState> slots_;
  std::vector<Slot> free_slots_;
  AdvanceHook advance_hook_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::size_t size_ = 0;  // live events only
  SimTime now_ = SimTime::Zero();
  Stats stats_;
};

}  // namespace resccl
