// Discrete-event queue with cancellation.
//
// The fluid link model reschedules a flow's completion every time the set of
// flows sharing one of its resources changes; instead of erasing queue
// entries, each logical event carries a generation number and stale entries
// are skipped on pop (lazy invalidation).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace resccl {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  // Immediately schedules `cb` at `when` (must be >= now). Events at equal
  // times fire in insertion order, keeping the simulation deterministic.
  void Schedule(SimTime when, Callback cb);

  // Handle-based scheduling for cancellable events. `slot` identifies a
  // logical event source (e.g. a flow); rescheduling a slot invalidates any
  // previously scheduled entry for it.
  using Slot = std::size_t;
  [[nodiscard]] Slot NewSlot();
  void ScheduleSlot(Slot slot, SimTime when, Callback cb);
  void CancelSlot(Slot slot);

  // Pops and fires the next event; returns false when the queue is empty.
  bool RunOne();
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;          // global tie-break, preserves FIFO at equal t
    Slot slot;                  // npos for one-shot events
    std::uint64_t generation;   // must match slot generation to be live
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  static constexpr Slot kNoSlot = static_cast<Slot>(-1);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::uint64_t> slot_generation_;
  std::vector<bool> slot_pending_;  // slot has a live queued entry
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;  // live events only
  SimTime now_ = SimTime::Zero();
};

}  // namespace resccl
