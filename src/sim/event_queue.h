// Discrete-event queue with cancellation.
//
// The fluid link model reschedules a flow's completion every time the set of
// flows sharing one of its resources changes; instead of erasing queue
// entries, each logical event carries a generation number and stale entries
// are skipped on pop (lazy invalidation).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace resccl {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  // Immediately schedules `cb` at `when` (must be >= now). Events at equal
  // times fire in insertion order, keeping the simulation deterministic.
  void Schedule(SimTime when, Callback cb);

  // Handle-based scheduling for cancellable events. `slot` identifies a
  // logical event source (e.g. a flow); rescheduling a slot invalidates any
  // previously scheduled entry for it.
  //
  // Slots are recycled: NewSlot prefers handles released via FreeSlot over
  // growing the generation table, so long-running simulations that churn
  // through short-lived event sources (e.g. millions of fluid flows) keep a
  // bounded slot table. A slot's generation counter survives recycling —
  // it only ever increments — so entries queued by a previous owner can
  // never fire for the new one.
  using Slot = std::size_t;
  [[nodiscard]] Slot NewSlot();
  void ScheduleSlot(Slot slot, SimTime when, Callback cb);
  void CancelSlot(Slot slot);
  // Cancels any pending entry and returns the slot to the free list. The
  // handle must not be used again until NewSlot hands it back out
  // (checked), and must not be freed twice (checked).
  void FreeSlot(Slot slot);

  // Pops and fires the next event; returns false when the queue is empty.
  bool RunOne();

  // Installed by a component that defers work within a timestamp (the fluid
  // model coalesces re-rate walks this way). RunOne invokes the hook
  // whenever the clock is about to advance past `now()` — including when
  // the queue has drained — and the hook returns true if it did work (it
  // may have scheduled new events, possibly earlier than the current head);
  // RunOne then re-examines the queue. A hook with nothing pending must
  // return false or RunOne would spin.
  using AdvanceHook = std::function<bool()>;
  void SetAdvanceHook(AdvanceHook hook) { advance_hook_ = std::move(hook); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] SimTime now() const { return now_; }
  // Size of the slot table ever allocated (recycled handles included);
  // exposed so tests can assert the free list bounds growth.
  [[nodiscard]] std::size_t allocated_slots() const {
    return slot_generation_.size();
  }
  // Callbacks actually fired over the queue's lifetime (stale slot entries
  // skipped by lazy invalidation are not counted). The perf harness
  // divides this by wall-clock for its events/sec throughput metric.
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;          // global tie-break, preserves FIFO at equal t
    Slot slot;                  // npos for one-shot events
    std::uint64_t generation;   // must match slot generation to be live
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  static constexpr Slot kNoSlot = static_cast<Slot>(-1);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::uint64_t> slot_generation_;
  std::vector<bool> slot_pending_;  // slot has a live queued entry
  std::vector<bool> slot_free_;     // slot is parked on the free list
  std::vector<Slot> free_slots_;
  AdvanceHook advance_hook_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::size_t size_ = 0;  // live events only
  SimTime now_ = SimTime::Zero();
};

}  // namespace resccl
