// Open-addressed uint64 -> uint32 hash table for the bucket-key index.
//
// Replaces the per-resource std::unordered_map<uint64_t, uint32_t>: node
// allocation per insert and a pointer chase per probe made the bucket
// lookup the re-rate hot path's worst cache behavior. This table stores
// keys and values in two flat power-of-two arrays with linear probing and
// backward-shift deletion — no tombstones, no per-entry allocation, and
// Clear() keeps capacity, so a warmed table churns key sets allocation-
// free.
//
// The empty sentinel is the all-ones bit pattern: bucket keys are
// BucketKey(rate, capped) = bit_cast<uint64>(rate) | capped << 63 with
// `rate` a non-negative finite double, whose exponent bits are never all
// ones — so the sentinel (a negative NaN's pattern) can never collide with
// a real key. Key zero (rate 0.0, uncapped) is a legal key, which is why
// zero cannot be the sentinel. Insertion checks this.
//
// Iteration order is never exposed: the fluid model's deterministic flush
// walks the dense bucket vector, not this index, so probe-order artifacts
// cannot leak into simulation results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace resccl {

class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  // Pointer to the value for `key`, or nullptr if absent. Valid until the
  // next Insert/Erase/Clear.
  [[nodiscard]] std::uint32_t* Find(std::uint64_t key) {
    if (keys_.empty()) return nullptr;
    std::size_t i = Home(key);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  // Finds `key` or inserts it with a default value; `inserted` reports
  // which. The returned reference is valid until the next mutation.
  [[nodiscard]] std::uint32_t& FindOrInsert(std::uint64_t key,
                                            bool& inserted) {
    RESCCL_CHECK_MSG(key != kEmptyKey, "FlatMap64 key collides with sentinel");
    if (keys_.empty() || (count_ + 1) * 4 > keys_.size() * 3) Grow();
    std::size_t i = Home(key);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) {
        inserted = false;
        return vals_[i];
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = 0;
    ++count_;
    inserted = true;
    return vals_[i];
  }

  // Removes `key` (must be present) by backward-shift: subsequent probe
  // chains stay unbroken without tombstones.
  void Erase(std::uint64_t key) {
    RESCCL_CHECK(!keys_.empty());
    std::size_t i = Home(key);
    while (keys_[i] != key) {
      RESCCL_CHECK_MSG(keys_[i] != kEmptyKey, "FlatMap64::Erase: absent key");
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      const std::uint64_t k = keys_[j];
      if (k == kEmptyKey) break;
      // j's element may fill the hole iff its home position does not lie
      // strictly between the hole and j (cyclically) — i.e. moving it back
      // cannot detach it from its probe chain.
      const std::size_t home = Home(k);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        keys_[hole] = k;
        vals_[hole] = vals_[j];
        hole = j;
      }
    }
    keys_[hole] = kEmptyKey;
    --count_;
  }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    count_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return keys_.size(); }

 private:
  [[nodiscard]] std::size_t Home(std::uint64_t key) const {
    // splitmix64 finalizer: full-entropy mix so the low bits taken by the
    // mask depend on every key bit (rates differ mostly in high mantissa
    // and exponent bits).
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask_;
  }

  void Grow() {
    const std::size_t ncap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    keys_.assign(ncap, kEmptyKey);
    vals_.assign(ncap, 0);
    mask_ = ncap - 1;
    count_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      std::size_t j = Home(old_keys[i]);
      while (keys_[j] != kEmptyKey) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
      ++count_;
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

}  // namespace resccl
