#include "sim/machine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "sim/faults.h"
#include "sim/witness.h"

namespace resccl {

DeadlockError::DeadlockError(DeadlockReport report)
    : std::runtime_error("SimMachine deadlock: " + report.witness),
      report_(std::move(report)) {}

struct SimMachine::TransferState {
  const Path* path = nullptr;
  int deps_remaining = 0;
  // Rendezvous bookkeeping: which TB arrived on each side, and when.
  // (Dependent edges live in the machine's shared CSR pool, not here —
  // keeping this struct allocation-free so the per-run assign reuses the
  // vector's buffer without touching the heap.)
  std::size_t send_tb = SIZE_MAX;
  std::size_t recv_tb = SIZE_MAX;
  SimTime send_arrival;
  SimTime recv_arrival;
  Bandwidth injection_cap;           // min of the two TBs' capability
  bool started = false;
  bool completed = false;
  TransferStats stats;
};

struct SimMachine::TbState {
  std::size_t pc = 0;                // next instruction
  bool blocked = false;              // waiting inside a transfer or barrier
  FaultPlan::Stall stall;            // injected pause (duration zero: none)
  bool stall_pending = false;
  SimTime seg_cursor;                // end of the TB's last emitted segment
  TbStats stats;
};

struct SimMachine::BarrierState {
  int waiting = 0;
  std::vector<std::size_t> parked;   // TB indices blocked at the barrier
  std::vector<SimTime> parked_since;
};

SimMachine::SimMachine(const Topology& topo, const CostModel& cost,
                       bool naive_rerate)
    : topo_(topo), cost_(cost), naive_rerate_(naive_rerate) {}

SimMachine::~SimMachine() = default;

const FluidNetwork& SimMachine::network() const {
  RESCCL_CHECK_MSG(net_.has_value(), "network() before Run()");
  return *net_;
}

SimRunReport SimMachine::Run(const SimProgram& program,
                             const FaultPlan* faults) {
  SimRunReport report;
  RunInto(program, faults, report);
  return report;
}

void SimMachine::RunInto(const SimProgram& program, const FaultPlan* faults,
                         SimRunReport& out) {
  program_ = &program;
  faults_ = (faults != nullptr && !faults->empty()) ? faults : nullptr;
  stall_slices_.clear();
  barrier_waits_.clear();
  // Reuse the queue and the network across runs: both Reset to their
  // just-constructed state while keeping every warmed buffer, so a repeated
  // same-shaped run touches no allocator. (A deadlocked previous run left
  // live flows behind; FluidNetwork::Reset handles that too.)
  if (!queue_.has_value()) {
    queue_.emplace();
    net_.emplace(topo_, cost_, *queue_, faults_, naive_rerate_);
  } else {
    queue_->Reset();
    net_->Reset(faults_);
  }
  if (observe_) net_->EnableRateLog();

  const std::size_t nt = program.transfers.size();
  transfers_.assign(nt, {});
  dep_heads_.assign(nt + 1, 0);
  for (std::size_t t = 0; t < nt; ++t) {
    const SimTransferDecl& decl = program.transfers[t];
    RESCCL_CHECK_MSG(decl.src != decl.dst, "transfer " << t << " is a self-loop");
    RESCCL_CHECK(decl.bytes > 0);
    TransferState& st = transfers_[t];
    st.path = &topo_.PathBetween(decl.src, decl.dst);
    st.deps_remaining = static_cast<int>(decl.deps.size());
    for (int d : decl.deps) {
      RESCCL_CHECK(d >= 0 && static_cast<std::size_t>(d) < nt);
      ++dep_heads_[static_cast<std::size_t>(d) + 1];
    }
  }
  // Counting pass -> prefix sum -> fill: the classic CSR build, with the
  // cursor copy in reusable scratch.
  for (std::size_t t = 0; t < nt; ++t) dep_heads_[t + 1] += dep_heads_[t];
  dep_edges_.resize(dep_heads_[nt]);
  dep_fill_.assign(dep_heads_.begin(), dep_heads_.end() - 1);
  for (std::size_t t = 0; t < nt; ++t) {
    for (int d : program.transfers[t].deps) {
      dep_edges_[dep_fill_[static_cast<std::size_t>(d)]++] =
          static_cast<std::int32_t>(t);
    }
  }

  tbs_.assign(program.tbs.size(), {});
  for (std::size_t i = 0; i < program.tbs.size(); ++i) {
    tbs_[i].stats.rank = program.tbs[i].rank;
    if (faults_ != nullptr) {
      tbs_[i].stall = faults_->StallFor(
          static_cast<int>(i), static_cast<int>(program.tbs[i].program.size()));
      tbs_[i].stall_pending = tbs_[i].stall.duration > SimTime::Zero();
    }
  }
  barriers_.resize(program.barrier_parties.size());
  for (BarrierState& bar : barriers_) {
    bar.waiting = 0;
    bar.parked.clear();
    bar.parked_since.clear();
  }
  if (observe_) {
    segments_.resize(program.tbs.size());
    for (std::vector<SimRunReport::TimelineSegment>& s : segments_) s.clear();
  }
  unfinished_tbs_ = static_cast<int>(program.tbs.size());

  // Kick every TB off at t = 0.
  for (std::size_t i = 0; i < tbs_.size(); ++i) {
    queue_->Schedule(SimTime::Zero(),
                     [this, i](SimTime now) { AdvanceTb(i, now); });
  }

  // Drain in timestamp batches: one pop loop per distinct simulated time
  // (plus one advance-hook consultation), instead of re-establishing the
  // heap front per event.
  std::uint64_t events = 0;
  std::uint64_t next_trace = 10'000'000;
  const bool trace = std::getenv("RESCCL_SIM_TRACE") != nullptr;
  for (;;) {
    const std::uint32_t fired = queue_->RunBatch();
    if (fired == 0) break;
    if (trace) {
      events += fired;
      if (events >= next_trace) {
        std::fprintf(stderr, "[sim] %llu events, t=%.3f ms, %d TBs open\n",
                     static_cast<unsigned long long>(events),
                     queue_->now().ms(), unfinished_tbs_);
        next_trace += 10'000'000;
      }
    }
  }

  if (unfinished_tbs_ != 0) {
    throw DeadlockError(BuildDeadlockReport());
  }

  out.makespan = SimTime::Zero();
  out.tbs.clear();
  out.tbs.reserve(tbs_.size());
  for (const TbState& tb : tbs_) {
    out.makespan = std::max(out.makespan, tb.stats.finish);
    out.tbs.push_back(tb.stats);
  }
  out.transfers.clear();
  out.transfers.reserve(transfers_.size());
  for (const TransferState& t : transfers_) {
    out.transfers.push_back(t.stats);
  }
  out.stalls.assign(stall_slices_.begin(), stall_slices_.end());
  out.barrier_waits.assign(barrier_waits_.begin(), barrier_waits_.end());
  if (observe_) {
    // Hand the streams over wholesale; with a reused report the buffers
    // ping-pong between the machine and the report, both staying warm.
    out.segments.swap(segments_);
  } else {
    out.segments.clear();
  }
  const std::span<const FluidNetwork::ResourceUsage> usage = net_->all_usage();
  out.link_usage.assign(usage.begin(), usage.end());
  out.link_rates.clear();
  if (observe_) out.link_rates = net_->TakeRateLog();
  out.events = queue_->events_fired();
  out.fluid = net_->stats();
  out.queue = queue_->stats();
}

void SimMachine::AdvanceTb(std::size_t tb, SimTime now) {
  TbState& state = tbs_[tb];
  state.blocked = false;
  const SimTb& decl = program_->tbs[tb];
  if (state.pc >= decl.program.size()) {
    state.stats.finish = now;
    --unfinished_tbs_;
    return;
  }
  // Injected straggler pause: the TB stops dead before this instruction.
  // Charged to fault_stall, not sync — the TB is not waiting on a peer.
  if (state.stall_pending &&
      state.pc == static_cast<std::size_t>(state.stall.before_instr)) {
    state.stall_pending = false;
    state.stats.fault_stall += state.stall.duration;
    stall_slices_.push_back(
        {static_cast<int>(tb), now, state.stall.duration});
    if (observe_) {
      EmitSegment(tb, SimRunReport::TimelineSegment::Kind::kStall, now,
                  now + state.stall.duration, -1, -1, false);
      state.seg_cursor = now + state.stall.duration;
    }
    queue_->Schedule(now + state.stall.duration,
                     [this, tb](SimTime t) { AdvanceTb(tb, t); });
    return;
  }
  const SimInstr& instr = decl.program[state.pc];
  ++state.pc;
  if (instr.overhead > SimTime::Zero()) {
    state.stats.overhead += instr.overhead;
    const std::size_t pc = state.pc - 1;
    queue_->Schedule(now + instr.overhead, [this, tb, pc](SimTime t) {
      Arrive(tb, pc, t);
    });
  } else {
    Arrive(tb, state.pc - 1, now);
  }
}

void SimMachine::Arrive(std::size_t tb, std::size_t instr_index, SimTime now) {
  const SimInstr& instr = program_->tbs[tb].program[instr_index];
  TbState& state = tbs_[tb];

  if (instr.kind == SimInstr::Kind::kBarrier) {
    RESCCL_CHECK(instr.barrier >= 0 &&
                 static_cast<std::size_t>(instr.barrier) < barriers_.size());
    BarrierState& bar = barriers_[static_cast<std::size_t>(instr.barrier)];
    bar.parked.push_back(tb);
    bar.parked_since.push_back(now);
    state.blocked = true;
    ++bar.waiting;
    const int parties =
        program_->barrier_parties[static_cast<std::size_t>(instr.barrier)];
    RESCCL_CHECK_MSG(bar.waiting <= parties, "barrier over-subscribed");
    if (bar.waiting == parties) {
      for (std::size_t i = 0; i < bar.parked.size(); ++i) {
        const std::size_t peer = bar.parked[i];
        tbs_[peer].stats.sync += now - bar.parked_since[i];
        barrier_waits_.push_back({static_cast<int>(peer), instr.barrier,
                                  bar.parked_since[i], now});
        if (observe_) {
          using Kind = SimRunReport::TimelineSegment::Kind;
          EmitSegment(peer, Kind::kOverhead, tbs_[peer].seg_cursor,
                      bar.parked_since[i], -1, -1, false);
          EmitSegment(peer, Kind::kSync, bar.parked_since[i], now, -1,
                      instr.barrier, false);
          tbs_[peer].seg_cursor = now;
        }
        queue_->Schedule(now,
                         [this, peer](SimTime t) { AdvanceTb(peer, t); });
      }
      bar.parked.clear();
      bar.parked_since.clear();
      bar.waiting = 0;
    }
    return;
  }

  RESCCL_CHECK(instr.transfer >= 0 &&
               static_cast<std::size_t>(instr.transfer) < transfers_.size());
  const auto tid = static_cast<std::size_t>(instr.transfer);
  TransferState& tr = transfers_[tid];
  RESCCL_CHECK_MSG(!tr.started, "transfer joined after it started");
  const SimTransferDecl& decl = program_->transfers[tid];
  const Bandwidth tb_cap =
      cost_.TbInjectionCap(tr.path->kind, program_->tbs[tb].warps) *
      program_->tbs[tb].injection_scale;
  if (instr.kind == SimInstr::Kind::kSendSide) {
    RESCCL_CHECK_MSG(tr.send_tb == SIZE_MAX,
                     "two send sides for one transfer");
    RESCCL_CHECK_MSG(program_->tbs[tb].rank == decl.src,
                     "send side on wrong rank");
    tr.send_tb = tb;
    tr.send_arrival = now;
    tr.stats.send_tb = static_cast<int>(tb);
    tr.stats.send_arrival = now;
  } else {
    RESCCL_CHECK_MSG(tr.recv_tb == SIZE_MAX,
                     "two recv sides for one transfer");
    RESCCL_CHECK_MSG(program_->tbs[tb].rank == decl.dst,
                     "recv side on wrong rank");
    tr.recv_tb = tb;
    tr.recv_arrival = now;
    tr.stats.recv_tb = static_cast<int>(tb);
    tr.stats.recv_arrival = now;
  }
  if (tr.injection_cap == Bandwidth()) {
    tr.injection_cap = tb_cap;
  } else {
    tr.injection_cap = std::min(tr.injection_cap, tb_cap);
  }
  state.blocked = true;
  TryStart(tid, now);
}

void SimMachine::TryStart(std::size_t transfer, SimTime now) {
  TransferState& tr = transfers_[transfer];
  if (tr.started || tr.send_tb == SIZE_MAX || tr.recv_tb == SIZE_MAX ||
      tr.deps_remaining > 0) {
    return;
  }
  tr.started = true;
  tr.stats.start = now;
  // Charge the rendezvous/dependency wait as sync time on both sides.
  tbs_[tr.send_tb].stats.sync += now - tr.send_arrival;
  tbs_[tr.recv_tb].stats.sync += now - tr.recv_arrival;

  const SimTransferDecl& decl = program_->transfers[transfer];
  // recvReduceCopy runs the reduction inline with the copy; model it as
  // proportionally more bytes through the same pipe.
  const double inflate = decl.is_reduce ? 1.0 + cost_.reduce_overhead : 1.0;
  const auto bytes = static_cast<std::int64_t>(
      static_cast<double>(decl.bytes) * inflate);

  // Startup latency α (stretched by any injected jitter), then the fluid
  // byte phase. The protocol's per-slot flag syncs ride on top of either
  // the overridden or the path-derived handshake.
  SimTime latency = (decl.latency_us >= 0.0
                         ? SimTime::Us(decl.latency_us)
                         : tr.path->latency * decl.latency_scale) +
                    SimTime::Us(decl.latency_extra_us);
  if (faults_ != nullptr) {
    latency = latency * faults_->LatencyScale(static_cast<int>(transfer));
  }
  tr.stats.latency = latency;
  tr.stats.wire_bytes = bytes;
  tr.stats.ideal_rate = std::min(tr.injection_cap.bytes_per_us(),
                                 tr.path->bottleneck.bytes_per_us());
  queue_->Schedule(now + latency, [this, transfer, bytes](SimTime t0) {
    TransferState& state = transfers_[transfer];
    net_->StartFlow(*state.path, bytes, state.injection_cap,
                    [this, transfer](SimTime t1) {
                      OnTransferComplete(transfer, t1);
                    });
    (void)t0;
  });
}

void SimMachine::OnTransferComplete(std::size_t transfer, SimTime now) {
  TransferState& tr = transfers_[transfer];
  tr.completed = true;
  tr.stats.complete = now;
  const SimTime busy = now - tr.stats.start;
  tbs_[tr.send_tb].stats.busy += busy;
  tbs_[tr.recv_tb].stats.busy += busy;
  if (observe_) {
    // The whole overhead/sync/inflight tiling of both sides is resolved
    // now that the completion time is known; emit it in one go (the TB
    // was blocked in this transfer the entire time, so its stream stays
    // chronological).
    using Kind = SimRunReport::TimelineSegment::Kind;
    const int tid = static_cast<int>(transfer);
    EmitSegment(tr.send_tb, Kind::kOverhead, tbs_[tr.send_tb].seg_cursor,
                tr.stats.send_arrival, tid, -1, true);
    EmitSegment(tr.send_tb, Kind::kSync, tr.stats.send_arrival,
                tr.stats.start, tid, -1, true);
    EmitSegment(tr.send_tb, Kind::kInflight, tr.stats.start, now, tid, -1,
                true);
    tbs_[tr.send_tb].seg_cursor = now;
    EmitSegment(tr.recv_tb, Kind::kOverhead, tbs_[tr.recv_tb].seg_cursor,
                tr.stats.recv_arrival, tid, -1, false);
    EmitSegment(tr.recv_tb, Kind::kSync, tr.stats.recv_arrival,
                tr.stats.start, tid, -1, false);
    EmitSegment(tr.recv_tb, Kind::kInflight, tr.stats.start, now, tid, -1,
                false);
    tbs_[tr.recv_tb].seg_cursor = now;
  }

  for (std::uint32_t e = dep_heads_[transfer]; e < dep_heads_[transfer + 1];
       ++e) {
    const auto dep = static_cast<std::size_t>(dep_edges_[e]);
    TransferState& d = transfers_[dep];
    --d.deps_remaining;
    RESCCL_CHECK(d.deps_remaining >= 0);
    TryStart(dep, now);
  }
  const std::size_t send_tb = tr.send_tb;
  const std::size_t recv_tb = tr.recv_tb;
  queue_->Schedule(now, [this, send_tb](SimTime t) { AdvanceTb(send_tb, t); });
  queue_->Schedule(now, [this, recv_tb](SimTime t) { AdvanceTb(recv_tb, t); });
}

void SimMachine::EmitSegment(std::size_t tb,
                             SimRunReport::TimelineSegment::Kind kind,
                             SimTime begin, SimTime end, int transfer,
                             int barrier, bool is_send) {
  RESCCL_CHECK_MSG(end >= begin, "segment runs backwards");
  if (end > begin) {
    segments_[tb].push_back({kind, is_send, transfer, barrier, begin, end});
  }
}

DeadlockReport SimMachine::BuildDeadlockReport() const {
  // One wait-for line per blocked TB: which instruction it is parked on and
  // what edge keeps it from releasing — the dynamic frontier of the same
  // wait-for graph the static analyzer walks (analysis/analyzer.cc).
  std::ostringstream os;
  os << unfinished_tbs_ << " TB(s) never finished";
  int listed = 0;
  constexpr int kMaxLines = 16;
  for (std::size_t i = 0; i < tbs_.size(); ++i) {
    const TbState& state = tbs_[i];
    if (!state.blocked) continue;  // finished (or was never started)
    if (++listed > kMaxLines) {
      os << "; ...";
      break;
    }
    os << "; tb#" << i << "(r" << program_->tbs[i].rank << ") blocked at ";
    RESCCL_CHECK(state.pc > 0);
    const SimInstr& instr = program_->tbs[i].program[state.pc - 1];
    if (instr.kind == SimInstr::Kind::kBarrier) {
      const auto b = static_cast<std::size_t>(instr.barrier);
      os << WitnessBarrier(instr.barrier) << ": " << barriers_[b].waiting
         << "/" << program_->barrier_parties[b] << " arrived "
         << WitnessBarrierEdge();
      continue;
    }
    const auto tid = static_cast<std::size_t>(instr.transfer);
    const TransferState& tr = transfers_[tid];
    os << WitnessTransfer(*program_, instr.transfer) << ":";
    if (tr.send_tb == SIZE_MAX) os << " no sender joined";
    if (tr.recv_tb == SIZE_MAX) os << " no receiver joined";
    if (tr.deps_remaining > 0) {
      os << " waits";
      int shown = 0;
      for (int d : program_->transfers[tid].deps) {
        if (transfers_[static_cast<std::size_t>(d)].completed) continue;
        if (++shown > 4) {
          os << " ...";
          break;
        }
        os << " " << WitnessDataDep() << " " << WitnessTransfer(*program_, d);
      }
    }
    if (tr.started && !tr.completed) os << " in flight";
  }

  DeadlockReport report;
  report.witness = os.str();
  report.status = Status::FailedPrecondition("SimMachine deadlock: " +
                                             report.witness);
  for (std::size_t t = 0; t < transfers_.size(); ++t) {
    if (!transfers_[t].completed) {
      report.stuck_transfers.push_back(static_cast<int>(t));
    }
  }
  return report;
}

double SimRunReport::AvgIdleRatio() const {
  if (tbs.empty()) return 0.0;
  double sum = 0.0;
  for (const TbStats& tb : tbs) {
    if (tb.finish > SimTime::Zero()) sum += tb.sync / tb.finish;
  }
  return sum / static_cast<double>(tbs.size());
}

double SimRunReport::MaxIdleRatio() const {
  double best = 0.0;
  for (const TbStats& tb : tbs) {
    if (tb.finish > SimTime::Zero()) {
      best = std::max(best, tb.sync / tb.finish);
    }
  }
  return best;
}

double SimRunReport::AvgBusyRatio() const {
  if (tbs.empty()) return 0.0;
  double sum = 0.0;
  for (const TbStats& tb : tbs) {
    if (tb.finish > SimTime::Zero()) sum += tb.busy / tb.finish;
  }
  return sum / static_cast<double>(tbs.size());
}

}  // namespace resccl
