#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/publish.h"

namespace resccl::service {

namespace {

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kRejected: return "rejected";
    case Outcome::kShed: return "shed";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

SchedulingService::SchedulingService(std::shared_ptr<const Topology> topo,
                                     ServiceConfig config)
    : topo_(std::move(topo)),
      config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? *config_.metrics
                                          : obs::MetricsRegistry::Global()),
      cache_(config_.cache),
      group_(ThreadPool::Shared()) {
  RESCCL_CHECK(topo_ != nullptr);
  if (config_.max_in_flight < 1) config_.max_in_flight = 1;
  config_.jobs = ThreadPool::ResolveJobs(config_.jobs);
  for (const TenantSpec& t : config_.tenants) {
    (void)TenantIndexLocked(t.name);
    tenants_[tenant_index_.at(t.name)].weight = t.weight > 0 ? t.weight : 1.0;
  }
  wall_epoch_us_ = SteadyNowUs();
}

SchedulingService::~SchedulingService() {
  // Live mode: every dispatched task must finish before members die. The
  // queue keeps draining through the tasks' completion hooks, so waiting on
  // the group alone is enough — each completion dispatches successors into
  // the same group.
  group_.Wait();
}

double SchedulingService::WallNowUs() const {
  return SteadyNowUs() - wall_epoch_us_;
}

std::size_t SchedulingService::TenantIndexLocked(const std::string& name) {
  auto it = tenant_index_.find(name);
  if (it != tenant_index_.end()) return it->second;
  TenantState state;
  state.name = name;
  tenants_.push_back(std::move(state));
  tenant_index_.emplace(name, tenants_.size() - 1);
  return tenants_.size() - 1;
}

int SchedulingService::LowestQueuedClassLocked() const {
  for (int c = kPriorityClasses - 1; c >= 0; --c) {
    for (const TenantState& t : tenants_) {
      if (!t.queues[static_cast<std::size_t>(c)].empty()) return c;
    }
  }
  return -1;
}

SchedulingService::Pending SchedulingService::PopShedVictimLocked(int cls) {
  // The newest arrival in the class: within each tenant the newest is the
  // deque back, so the victim is the back with the largest id. Dropping
  // LIFO keeps the oldest (longest-waiting) work of the class alive.
  TenantState* victim_tenant = nullptr;
  std::uint64_t newest = 0;
  for (TenantState& t : tenants_) {
    auto& q = t.queues[static_cast<std::size_t>(cls)];
    if (q.empty()) continue;
    if (victim_tenant == nullptr || q.back().id > newest) {
      victim_tenant = &t;
      newest = q.back().id;
    }
  }
  RESCCL_CHECK(victim_tenant != nullptr);
  auto& q = victim_tenant->queues[static_cast<std::size_t>(cls)];
  Pending victim = std::move(q.back());
  q.pop_back();
  --queued_total_;
  return victim;
}

bool SchedulingService::PopNextLocked(Pending& out) {
  for (int c = 0; c < kPriorityClasses; ++c) {
    TenantState* best = nullptr;
    double best_tag = std::numeric_limits<double>::infinity();
    for (TenantState& t : tenants_) {
      const auto& q = t.queues[static_cast<std::size_t>(c)];
      if (q.empty()) continue;
      // Start-time fair queuing over served bytes: the tenant whose
      // charged work (including this head request) is smallest relative to
      // its weight goes first. Ties resolve by registration order — the
      // iteration order here — so the pick is deterministic.
      const double tag =
          (static_cast<double>(t.charged_bytes + q.front().bytes)) / t.weight;
      if (best == nullptr || tag < best_tag) {
        best = &t;
        best_tag = tag;
      }
    }
    if (best == nullptr) continue;
    auto& q = best->queues[static_cast<std::size_t>(c)];
    out = std::move(q.front());
    q.pop_front();
    --queued_total_;
    best->charged_bytes += out.bytes;
    return true;
  }
  return false;
}

void SchedulingService::EnqueueLocked(Pending p) {
  const std::size_t t = TenantIndexLocked(p.req.tenant);
  const auto c = static_cast<std::size_t>(p.req.priority);
  tenants_[t].queues[c].push_back(std::move(p));
  ++queued_total_;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_total_);
}

void SchedulingService::RecordDropLocked(Pending p, Outcome outcome) {
  const auto cls = static_cast<std::size_t>(p.req.priority);
  if (outcome == Outcome::kShed) {
    ++stats_.shed;
    ++stats_.shed_by_class[cls];
  } else {
    ++stats_.rejected;
    ++stats_.rejected_by_class[cls];
  }
  // The invariant counter: dropping this request while something strictly
  // less urgent is still queued would be a priority inversion. The policy
  // always drops from the lowest queued class, so this stays 0; the load
  // bench asserts that rather than assuming it.
  const int lowest = LowestQueuedClassLocked();
  if (lowest > static_cast<int>(cls)) ++stats_.shed_inversions;
  obs::PublishServiceDecision(metrics_, OutcomeName(outcome),
                              PriorityName(p.req.priority));

  Response r;
  r.id = p.id;
  r.tenant = std::move(p.req.tenant);
  r.priority = p.req.priority;
  r.outcome = outcome;
  r.bytes = p.bytes;
  completed_.push_back(std::move(r));
}

void SchedulingService::RecordServedLocked(Pending p,
                                           const PlanCache::Lookup& lookup,
                                           CollectiveReport report,
                                           double queue_wait_us) {
  ++stats_.served;
  if (lookup.hit) {
    ++stats_.coalesced;
  } else {
    ++stats_.prepares;
  }
  stats_.served_bytes[p.req.tenant] += p.bytes;
  obs::PublishServiceCompletion(metrics_, p.req.tenant, /*failed=*/false,
                                lookup.hit, queue_wait_us,
                                static_cast<double>(p.bytes));

  Response r;
  r.id = p.id;
  r.tenant = std::move(p.req.tenant);
  r.priority = p.req.priority;
  r.outcome = Outcome::kServed;
  r.coalesced = lookup.hit;
  r.queue_wait_us = queue_wait_us;
  r.bytes = p.bytes;
  r.report = std::move(report);
  r.report.plan_cache_hit = lookup.hit;
  r.report.prepare_us = lookup.prepare_us;
  completed_.push_back(std::move(r));
}

void SchedulingService::RecordFailedLocked(Pending p, std::string error,
                                           double queue_wait_us) {
  ++stats_.failed;
  obs::PublishServiceCompletion(metrics_, p.req.tenant, /*failed=*/true,
                                /*coalesced=*/false, queue_wait_us, 0.0);
  Response r;
  r.id = p.id;
  r.tenant = std::move(p.req.tenant);
  r.priority = p.req.priority;
  r.outcome = Outcome::kFailed;
  r.queue_wait_us = queue_wait_us;
  r.bytes = p.bytes;
  r.error = std::move(error);
  completed_.push_back(std::move(r));
}

void SchedulingService::PublishDepthLocked() {
  obs::PublishServiceDepth(metrics_, static_cast<double>(queued_total_),
                           static_cast<double>(in_flight_));
}

std::uint64_t SchedulingService::Submit(Request req) {
  const std::lock_guard<std::mutex> lock(mu_);
  const double arrival =
      config_.deterministic ? virtual_now_us_ : WallNowUs();
  return SubmitInternal(std::move(req), arrival, /*explicit_arrival=*/false);
}

std::uint64_t SchedulingService::SubmitAt(Request req, double arrival_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  RESCCL_CHECK_MSG(config_.deterministic,
                   "SubmitAt is a deterministic-mode interface");
  RESCCL_CHECK_MSG(arrival_us <= virtual_now_us_,
                   "arrival " << arrival_us << "us is ahead of the virtual "
                   "clock; AdvanceTo it first");
  return SubmitInternal(std::move(req), arrival_us, /*explicit_arrival=*/true);
}

std::uint64_t SchedulingService::SubmitInternal(Request req, double arrival_us,
                                                bool /*explicit_arrival*/) {
  // Callers hold mu_.
  Pending p;
  p.id = ++next_id_;
  p.bytes = req.run.launch.buffer.bytes();
  p.arrival_us = arrival_us;
  p.req = std::move(req);
  const std::uint64_t id = p.id;
  const Priority priority = p.req.priority;

  ++stats_.submitted;
  obs::PublishServiceDecision(metrics_, "submitted", PriorityName(priority));

  if (queued_total_ < config_.queue_bound) {
    ++stats_.admitted;
    obs::PublishServiceDecision(metrics_, "admitted", PriorityName(priority));
    EnqueueLocked(std::move(p));
  } else {
    // Overload: make room by shedding from the least urgent queued class,
    // but only for a strictly more urgent arrival — otherwise reject the
    // arrival itself. Queue depth therefore never exceeds the bound.
    const int lowest = LowestQueuedClassLocked();
    if (lowest > static_cast<int>(priority)) {
      Pending victim = PopShedVictimLocked(lowest);
      RecordDropLocked(std::move(victim), Outcome::kShed);
      ++stats_.admitted;
      obs::PublishServiceDecision(metrics_, "admitted",
                                  PriorityName(priority));
      EnqueueLocked(std::move(p));
    } else {
      RecordDropLocked(std::move(p), Outcome::kRejected);
    }
  }
  PublishDepthLocked();
  if (!config_.deterministic) DispatchMoreLocked();
  return id;
}

void SchedulingService::AdvanceTo(double virtual_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  RESCCL_CHECK_MSG(config_.deterministic,
                   "AdvanceTo is a deterministic-mode interface");
  RESCCL_CHECK_MSG(virtual_us >= virtual_now_us_,
                   "virtual clock cannot run backwards");
  virtual_now_us_ = virtual_us;
}

bool SchedulingService::Step() {
  const std::lock_guard<std::mutex> lock(mu_);
  RESCCL_CHECK_MSG(config_.deterministic,
                   "Step is a deterministic-mode interface; live mode "
                   "dispatches on Submit");
  if (queued_total_ == 0) return false;

  std::vector<Pending> batch;
  batch.reserve(static_cast<std::size_t>(config_.max_in_flight));
  Pending next;
  while (static_cast<int>(batch.size()) < config_.max_in_flight &&
         PopNextLocked(next)) {
    batch.push_back(std::move(next));
  }
  const double dispatch_us = virtual_now_us_;
  in_flight_ = static_cast<int>(batch.size());
  PublishDepthLocked();

  // Prepare serially in batch order: misses single-flight through the
  // shared cache, so duplicated fingerprints in (and across) batches cost
  // one compile. Then execute the batch via ParallelFor — every report is
  // written by index, so jobs = N is bit-identical to serial.
  std::vector<Result<PlanCache::Lookup>> lookups;
  lookups.reserve(batch.size());
  for (const Pending& p : batch) {
    lookups.push_back(cache_.GetOrPrepare(p.req.algorithm, topo_,
                                          p.req.options, p.req.backend));
  }
  std::vector<CollectiveReport> reports(batch.size());
  std::vector<std::string> errors(batch.size());
  ParallelFor(config_.jobs, batch.size(), [&](std::size_t i) {
    if (!lookups[i].ok()) return;
    try {
      reports[i] = Execute(*lookups[i].value().plan, batch[i].req.run);
    } catch (const std::exception& e) {
      errors[i] = e.what();
    }
  });

  // The batch models max_in_flight concurrent executors: it occupies the
  // virtual clock for as long as its slowest member simulates.
  double batch_makespan_us = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (lookups[i].ok() && errors[i].empty()) {
      batch_makespan_us =
          std::max(batch_makespan_us, reports[i].elapsed.us());
    }
  }
  virtual_now_us_ += batch_makespan_us;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double wait = dispatch_us - batch[i].arrival_us;
    if (!lookups[i].ok()) {
      RecordFailedLocked(std::move(batch[i]),
                         lookups[i].status().ToString(), wait);
    } else if (!errors[i].empty()) {
      RecordFailedLocked(std::move(batch[i]), std::move(errors[i]), wait);
    } else {
      RecordServedLocked(std::move(batch[i]), lookups[i].value(),
                         std::move(reports[i]), wait);
    }
  }
  in_flight_ = 0;
  PublishDepthLocked();
  return true;
}

void SchedulingService::RunUntilQuiescent() {
  if (config_.deterministic) {
    while (Step()) {
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  quiescent_cv_.wait(lock,
                     [&] { return queued_total_ == 0 && in_flight_ == 0; });
}

void SchedulingService::DispatchMoreLocked() {
  Pending p;
  while (in_flight_ < config_.max_in_flight && PopNextLocked(p)) {
    ++in_flight_;
    const double wait = WallNowUs() - p.arrival_us;
    PublishDepthLocked();
    auto task = std::make_shared<Pending>(std::move(p));
    group_.Run([this, task, wait] { ExecuteOne(std::move(*task), wait); });
  }
}

void SchedulingService::ExecuteOne(Pending p, double queue_wait_us) {
  // Pool-task body (live mode): everything slow — the possibly-coalesced
  // Prepare and the Execute — runs outside mu_; only the bookkeeping locks.
  Result<PlanCache::Lookup> lookup =
      cache_.GetOrPrepare(p.req.algorithm, topo_, p.req.options,
                          p.req.backend);
  CollectiveReport report;
  std::string error;
  if (lookup.ok()) {
    try {
      report = Execute(*lookup.value().plan, p.req.run);
    } catch (const std::exception& e) {
      error = e.what();
    }
  } else {
    error = lookup.status().ToString();
  }

  const std::lock_guard<std::mutex> lock(mu_);
  if (!lookup.ok() || !error.empty()) {
    RecordFailedLocked(std::move(p), std::move(error), queue_wait_us);
  } else {
    RecordServedLocked(std::move(p), lookup.value(), std::move(report),
                       queue_wait_us);
  }
  --in_flight_;
  DispatchMoreLocked();
  PublishDepthLocked();
  if (queued_total_ == 0 && in_flight_ == 0) quiescent_cv_.notify_all();
}

std::vector<Response> SchedulingService::Drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Response> out;
  out.swap(completed_);
  return out;
}

SchedulingService::Stats SchedulingService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double SchedulingService::VirtualNow() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_us_;
}

std::size_t SchedulingService::queued() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_total_;
}

int SchedulingService::in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace resccl::service
