#include "service/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "algorithms/ring.h"
#include "algorithms/tree.h"
#include "common/rng.h"

namespace resccl::service {

namespace {

// The compile-shape pool. Shapes differ in algorithm (and therefore
// fingerprint); launch buffer size deliberately does NOT define a shape —
// it never enters the fingerprint, so requests of different sizes still
// coalesce onto one plan.
Algorithm ShapeAlgorithm(int shape, const Topology& topo) {
  const int n = topo.nranks();
  switch (shape) {
    case 0: return algorithms::RingAllReduce(n);
    case 1: return algorithms::RingAllGather(n);
    case 2: return algorithms::RingReduceScatter(n);
    default: return algorithms::DoubleBinaryTreeAllReduce(n);
  }
}

}  // namespace

std::vector<Arrival> GenerateWorkload(const Topology& topo,
                                      const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  const int shapes = std::clamp(spec.distinct_shapes, 1, 4);
  std::vector<TenantSpec> tenants = spec.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{"default", 1.0});

  // Pre-build one Algorithm per shape: the stream reuses the objects, so
  // identical shapes really are byte-identical inputs to the fingerprint.
  std::vector<Algorithm> pool;
  pool.reserve(static_cast<std::size_t>(shapes));
  for (int s = 0; s < shapes; ++s) pool.push_back(ShapeAlgorithm(s, topo));

  const int min_mib = std::max(1, spec.min_buffer_mib);
  const int max_mib = std::max(min_mib, spec.max_buffer_mib);
  int size_steps = 0;
  for (int m = min_mib; m < max_mib; m *= 2) ++size_steps;

  std::vector<Arrival> out;
  out.reserve(static_cast<std::size_t>(spec.requests));
  double clock_us = 0;
  for (int i = 0; i < spec.requests; ++i) {
    // Exponential interarrival via inverse CDF; 1 - U keeps the argument
    // of log strictly positive.
    clock_us +=
        -spec.mean_interarrival_us * std::log(1.0 - rng.NextDouble());

    Arrival a;
    a.arrival_us = clock_us;
    a.req.tenant =
        tenants[static_cast<std::size_t>(rng.NextInt(
                    0, static_cast<std::int64_t>(tenants.size()) - 1))]
            .name;
    const double p = rng.NextDouble();
    a.req.priority = p < spec.p_high          ? Priority::kHigh
                     : p < spec.p_high + spec.p_low ? Priority::kLow
                                                    : Priority::kNormal;
    a.req.algorithm =
        pool[static_cast<std::size_t>(rng.NextInt(0, shapes - 1))];
    a.req.run.launch.buffer =
        Size::MiB(min_mib << rng.NextInt(0, size_steps));
    out.push_back(std::move(a));
  }
  return out;
}

void ReplayOpenLoop(SchedulingService& svc,
                    const std::vector<Arrival>& arrivals) {
  RESCCL_CHECK_MSG(svc.config().deterministic,
                   "ReplayOpenLoop drives the virtual clock");
  for (const Arrival& a : arrivals) {
    // Work the server forward until the clock reaches this arrival: batch
    // after batch while anything is queued, then an idle jump. Each Step
    // pops at least one request, so the loop terminates.
    while (svc.VirtualNow() < a.arrival_us) {
      if (!svc.Step()) {
        svc.AdvanceTo(a.arrival_us);
        break;
      }
    }
    svc.SubmitAt(a.req, a.arrival_us);
  }
  svc.RunUntilQuiescent();
}

}  // namespace resccl::service
