// Seeded multi-tenant workloads for the scheduling service.
//
// The serve CLI, the load bench (bench/micro_service.cc), and the property
// tests all need the same thing: a reproducible open-loop arrival stream —
// exponential interarrivals, a tenant/priority mix, a bounded pool of
// distinct compile shapes — plus a driver that replays it against a
// deterministic SchedulingService. Keeping both here means the bench
// measures exactly the process the tests prove invariants about.
#pragma once

#include <cstdint>
#include <vector>

#include "service/service.h"
#include "topology/topology.h"

namespace resccl::service {

struct WorkloadSpec {
  std::uint64_t seed = 1;
  int requests = 64;
  // Mean of the exponential interarrival distribution (virtual µs). Small
  // relative to a batch makespan = overload; large = an idle server.
  double mean_interarrival_us = 50.0;
  // Number of distinct compile shapes (algorithm variants) the stream draws
  // from, clamped to [1, 4]. 1 makes every request fingerprint-identical —
  // the fully-coalescible workload the coalesce-rate check uses.
  int distinct_shapes = 4;
  // Tenant mix (uniform draw). Empty = one "default" tenant, weight 1.
  std::vector<TenantSpec> tenants;
  // Priority mix: P(high), P(low); the rest arrive as normal.
  double p_high = 0.2;
  double p_low = 0.3;
  // Launch buffer bytes: log-uniform power-of-two in [min_mib, max_mib].
  int min_buffer_mib = 1;
  int max_buffer_mib = 8;
};

struct Arrival {
  double arrival_us = 0;
  Request req;
};

// Expands `spec` into a concrete arrival stream for `topo`, sorted by
// arrival time. Same (spec, topo) -> identical stream, always.
[[nodiscard]] std::vector<Arrival> GenerateWorkload(const Topology& topo,
                                                    const WorkloadSpec& spec);

// Replays `arrivals` (already time-sorted) open-loop against a
// deterministic-mode service: the virtual clock runs batches whenever work
// is queued, idles forward to the next arrival otherwise, and drains after
// the last arrival. Responses accumulate inside `svc` (Drain() them).
void ReplayOpenLoop(SchedulingService& svc,
                    const std::vector<Arrival>& arrivals);

}  // namespace resccl::service
