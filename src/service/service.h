// Multi-tenant collective-scheduling service.
//
// The compile-once/execute-many split (backend.h), the sharded plan cache,
// and the metrics registry make ResCCL a fast library; this module makes
// it a *server*: a long-running SchedulingService that admits thousands of
// concurrent collective requests from many tenants against one shared plan
// cache and one simulator pool, and degrades gracefully under overload.
//
//   Admission    a bounded queue (Config::queue_bound). When full, the
//                lowest-priority queued request is shed to admit a more
//                urgent arrival; an arrival no more urgent than everything
//                queued is rejected outright. Shedding is priority-ordered
//                by construction — a request is never dropped while a
//                strictly less urgent one stays queued — and the service
//                counts violations (Stats::shed_inversions, always 0) so
//                the load bench can assert the property, not assume it.
//   Fairness     strict priority across classes; within a class, tenants
//                share by weight: dequeue picks the tenant minimizing
//                (charged_bytes + head_bytes) / weight — start-time fair
//                queuing over served bytes, so long-run per-tenant
//                throughput tracks the configured weights.
//   Coalescing   Prepare goes through the shared PlanCache, whose
//                single-flight miss path guarantees one compile per
//                fingerprint no matter how many requesters race; N
//                concurrent identical requests cost one compile and N
//                Executes of the shared artifact.
//   Execution    Execute runs asynchronously with at most
//                Config::max_in_flight requests in flight, on the shared
//                work-stealing pool (live mode) or batch-by-batch under
//                the virtual clock (deterministic mode).
//
// Deterministic-first: with Config::deterministic (the default), nothing
// runs in the background. Submit/SubmitAt only enqueue; Step() dispatches
// one batch of up to max_in_flight requests at the current *virtual* time,
// executes it (optionally via ParallelFor — bit-identical to serial by the
// by-index determinism contract), and advances the virtual clock by the
// batch's slowest simulated makespan. Arrival order, admission decisions,
// queue waits, and completion order are all exactly reproducible, so
// fairness, coalescing, and shedding invariants are assertable equalities
// rather than flaky thresholds. Live mode (deterministic = false) runs the
// identical admission/fairness/shedding state machine behind real threads.
//
// Telemetry: every decision and completion publishes to the obs metrics
// registry under stable service.* names (docs/observability.md) when the
// registry is enabled; Stats mirrors the counters unconditionally.
//
// Tenancy is a serving-time concept only: tenant, priority, quota, and
// queue state never enter the compile fingerprint, so all tenants share
// one plan per (algorithm, topology, options) — see DESIGN.md.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "runtime/backend.h"
#include "runtime/plan_cache.h"

namespace resccl::service {

// Lower value = more urgent. Dispatch is strict priority across classes;
// shedding always starts from the least urgent queued class.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kPriorityClasses = 3;

[[nodiscard]] const char* PriorityName(Priority p);

enum class Outcome : std::uint8_t {
  kServed,    // executed; Response::report is valid
  kRejected,  // refused at admission (queue full, nothing less urgent queued)
  kShed,      // admitted earlier, evicted to make room for a more urgent one
  kFailed,    // dispatched but Prepare/Execute failed; Response::error set
};

[[nodiscard]] const char* OutcomeName(Outcome o);

struct TenantSpec {
  std::string name;
  double weight = 1.0;  // relative share of served bytes within a class
};

struct ServiceConfig {
  // Maximum queued (admitted but not yet dispatched) requests. The queue
  // depth never exceeds this — asserted via Stats::max_queue_depth.
  std::size_t queue_bound = 1024;
  // Maximum requests dispatched concurrently (live mode) or per batch
  // (deterministic mode).
  int max_in_flight = 4;
  // Execute parallelism within a deterministic batch: ParallelFor jobs.
  // Reports are bit-identical across jobs values. 0 resolves RESCCL_JOBS.
  int jobs = 1;
  // Virtual clock + explicit Step pump (true) vs background threads on the
  // shared pool (false). The scheduling state machine is identical.
  bool deterministic = true;
  PlanCache::Config cache;
  // Tenants with non-default weights. Unknown tenants register on first
  // use with weight 1.0.
  std::vector<TenantSpec> tenants;
  // Registry for service.* telemetry; nullptr = MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
};

struct Request {
  std::string tenant = "default";
  Priority priority = Priority::kNormal;
  Algorithm algorithm;
  CompileOptions options;
  RunRequest run;  // launch config, cost model, verify, faults
  std::string backend = "ResCCL";
};

struct Response {
  std::uint64_t id = 0;
  std::string tenant;
  Priority priority = Priority::kNormal;
  Outcome outcome = Outcome::kRejected;
  // This request's plan came without a fresh compile (memory/disk hit or a
  // coalesced wait on a concurrent compile of the same fingerprint).
  bool coalesced = false;
  // Dispatch time minus arrival time: virtual µs (deterministic) or wall
  // µs (live). Zero for requests never dispatched.
  double queue_wait_us = 0;
  std::int64_t bytes = 0;  // launch buffer bytes (the fairness currency)
  CollectiveReport report;  // valid when outcome == kServed
  std::string error;        // set when outcome == kFailed
};

class SchedulingService {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::uint64_t coalesced = 0;  // served without a fresh compile
    std::uint64_t prepares = 0;   // served via a fresh compile
    // Requests dropped (rejected or shed) while a strictly less urgent
    // request stayed queued. The admission policy makes this impossible;
    // it is counted so benches assert the invariant instead of trusting it.
    std::uint64_t shed_inversions = 0;
    std::size_t max_queue_depth = 0;  // high-water mark, <= queue_bound
    std::array<std::uint64_t, kPriorityClasses> rejected_by_class{};
    std::array<std::uint64_t, kPriorityClasses> shed_by_class{};
    std::map<std::string, std::int64_t> served_bytes;  // per tenant
  };

  // `topo` is the cluster every tenant's collectives run on; all requests
  // compile against it (one artifact per fingerprint, shared cache-wide).
  SchedulingService(std::shared_ptr<const Topology> topo,
                    ServiceConfig config);
  ~SchedulingService();
  SchedulingService(const SchedulingService&) = delete;
  SchedulingService& operator=(const SchedulingService&) = delete;

  // Submits one request. The admission decision (admit / reject / shed a
  // victim) happens synchronously; rejected requests complete immediately
  // with Outcome::kRejected. Returns the request id. Thread-safe in both
  // modes. In live mode, admitted work also starts executing.
  std::uint64_t Submit(Request req);

  // Deterministic mode only: Submit with an explicit arrival time for
  // open-loop workloads — the request "arrived" at `arrival_us` even if
  // the virtual clock has already advanced past it executing a batch, so
  // queue waits reflect the offered arrival process, not the batch grid.
  // arrival_us must not exceed the virtual clock.
  std::uint64_t SubmitAt(Request req, double arrival_us);

  // Deterministic mode only: advances the virtual clock to `virtual_us`
  // (must be >= VirtualNow) — models idle time between arrivals.
  void AdvanceTo(double virtual_us);

  // Deterministic mode only: dispatches one batch of up to max_in_flight
  // requests at the current virtual time, executes it, records responses,
  // and advances the virtual clock by the batch's slowest simulated
  // makespan. Returns false (and leaves the clock alone) when the queue is
  // empty. Batch completion order is submission-fairness order, so the
  // whole run is bit-reproducible.
  bool Step();

  // Deterministic mode: Step until the queue drains. Live mode: block
  // until no request is queued or in flight. Either way the service is
  // quiescent afterwards: every admitted request has a recorded outcome.
  void RunUntilQuiescent();

  // Completed responses since the last Drain, in completion order
  // (deterministic mode: exactly reproducible; live mode: arbitrary).
  [[nodiscard]] std::vector<Response> Drain();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const PlanCache& plan_cache() const { return cache_; }
  [[nodiscard]] double VirtualNow() const;
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] int in_flight() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    Request req;
    double arrival_us = 0;
    std::int64_t bytes = 0;
  };
  struct TenantState {
    std::string name;
    double weight = 1.0;
    // Fairness numerator: bytes charged at dispatch. Charging at dispatch
    // (not completion) keeps consecutive picks from piling onto one tenant
    // while its first request is still in flight.
    std::int64_t charged_bytes = 0;
    std::array<std::deque<Pending>, kPriorityClasses> queues;
  };

  [[nodiscard]] std::size_t TenantIndexLocked(const std::string& name);
  [[nodiscard]] int LowestQueuedClassLocked() const;
  // The least urgent, newest-arrived queued request (class `cls`).
  [[nodiscard]] Pending PopShedVictimLocked(int cls);
  // Weighted-fair pick: strict priority, then min (charged + head)/weight.
  [[nodiscard]] bool PopNextLocked(Pending& out);
  void EnqueueLocked(Pending p);
  void RecordDropLocked(Pending p, Outcome outcome);
  void RecordServedLocked(Pending p, const PlanCache::Lookup& lookup,
                          CollectiveReport report, double queue_wait_us);
  void RecordFailedLocked(Pending p, std::string error, double queue_wait_us);
  void PublishDepthLocked();
  std::uint64_t SubmitInternal(Request req, double arrival_us,
                               bool explicit_arrival);
  // Live mode: move queued work into flight while capacity remains.
  void DispatchMoreLocked();
  void ExecuteOne(Pending p, double queue_wait_us);  // live-mode task body
  [[nodiscard]] double WallNowUs() const;

  std::shared_ptr<const Topology> topo_;
  ServiceConfig config_;
  obs::MetricsRegistry& metrics_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable quiescent_cv_;
  std::vector<TenantState> tenants_;
  std::map<std::string, std::size_t> tenant_index_;
  std::size_t queued_total_ = 0;
  int in_flight_ = 0;
  std::uint64_t next_id_ = 0;
  double virtual_now_us_ = 0;
  double wall_epoch_us_ = 0;  // live mode: steady_clock at construction
  Stats stats_;
  std::vector<Response> completed_;

  // Live-mode execution tasks; joined (after the queue drains) in ~Service.
  TaskGroup group_;
};

}  // namespace resccl::service
