// Static optimality bounds: what is the fastest any algorithm could run?
//
// The PR 3 verifier proves a plan *safe*; this module proves how *fast* a
// collective could possibly be on a topology, so benches and the selector
// can report "% of optimal" against an absolute yardstick instead of each
// other. Two bound families, combined as max():
//
//   alpha (latency)    Any causal chain carrying rank i's contribution to
//                      rank j's result contains a transfer crossing every
//                      boundary separating i from j (node, rack, pod). That
//                      transfer pays at least the one-hop startup latency of
//                      its boundary, scaled by the protocol latency factor —
//                      micro-batch-0 invocations always pay it in full (the
//                      cheaper pipelined handshake applies only to later
//                      micro-batches of the same primitive).
//
//   beta (bandwidth)   A cut-based relaxation of the multi-commodity-flow
//                      problem (TE-CCL's framing): for every cut, the bytes
//                      that provably must cross it divided by the cut's
//                      capacity lower-bounds the makespan. Cut families:
//                        rank egress/ingress  {gpu_out, pcie_out} of one GPU
//                        node NIC             min(Σ pcie, driven rails × nic)
//                        rack trunk           the ToR↔aggregation trunk
//                                             (oversubscription included)
//                        pod spine            the pod↔spine link
//                        aggregate injection  Σ over ranks of egress pools,
//                                             against the counting bound on
//                                             total wire bytes.
//                      Demands come from entropy/counting arguments on the
//                      collective's postcondition (e.g. AllReduce: each
//                      chunk's n contributions need ≥ n−1 combining
//                      transmissions, then the result needs n−1 more to
//                      disseminate — 2(n−1)·S total, which on a homogeneous
//                      single node reduces to the textbook 2(n−1)/n · S/B).
//
// Soundness contract (enforced by tests/test_bounds_property.cc): the fluid
// simulator never lets a resource's aggregate rate exceed its capacity, and
// contention penalties, injection caps, overheads, and faults only slow runs
// down — so no clean simulated run finishes below ComputeLowerBound(). The
// bound is evaluated at the bytes the launch actually moves (micro-batch
// flooring included) in *wire* terms: protocol wire inflation (LL's flag
// words, LL128's per-line flags) multiplies every cut's demand, because
// those bytes really cross the cut — the simulator charges them as flow
// bytes, so the inflated bound stays a floor on simulated runs. The alpha
// bound likewise adds the protocol's per-slot flag-synchronization cost for
// one boundary chunk. Protocol::kAuto is resolved (ResolveProtocol) before
// evaluation; BoundReport::protocol records the choice.
#pragma once

#include <string>
#include <vector>

#include "core/algorithm.h"
#include "memory/reference.h"
#include "runtime/lowering.h"
#include "sim/cost_model.h"
#include "topology/topology.h"

namespace resccl {

// One cut: the bytes that must cross it, the capacity carrying them, and
// the implied time. `time` is zero-capacity-safe (infinite only if demand
// is positive on a zero-capacity cut, which no preset produces).
struct CutBound {
  std::string name;        // "node0 nic egress", "aggregate injection", ...
  double demand_bytes = 0;
  Bandwidth capacity;
  SimTime time;
};

// What to bound: the collective, the launch geometry (buffer / chunk /
// protocol decide effective bytes and the latency factor), and the
// algorithm's chunk count (0 means nranks, the ResCCLang default).
struct BoundInput {
  CollectiveOp op = CollectiveOp::kAllReduce;
  LaunchConfig launch;
  int nchunks = 0;
  Rank root = 0;  // rooted collectives only
};

struct BoundReport {
  SimTime alpha;          // latency bound
  SimTime bandwidth;      // best (largest) cut bound
  SimTime combined;       // max(alpha, bandwidth)
  Size effective_buffer;  // per-rank payload the launch actually moves
  int nmicrobatches = 1;
  // The protocol the bound was evaluated at — the launch's, or the
  // ResolveProtocol choice when the launch asked for kAuto.
  Protocol protocol = Protocol::kSimple;
  std::string binding_cut;      // name of the cut achieving `bandwidth`
  std::vector<CutBound> cuts;   // every evaluated cut, binding first

  // elapsed → percent of optimal in (0, 100]; 0 when elapsed is zero.
  [[nodiscard]] double OptimalityPct(SimTime elapsed) const;
  // "combined 123.4us (alpha 5.0us, bandwidth 123.4us via node0 nic egress)"
  [[nodiscard]] std::string Summary() const;
};

// The lower bound for `input` on `topo` under `cost`'s protocol factors.
[[nodiscard]] BoundReport ComputeLowerBound(const Topology& topo,
                                            const CostModel& cost,
                                            const BoundInput& input);

// Convenience: bound the collective a concrete algorithm implements, at the
// launch it will run with (nchunks and root read from the algorithm).
[[nodiscard]] BoundReport ComputeLowerBound(const Topology& topo,
                                            const CostModel& cost,
                                            const Algorithm& algo,
                                            const LaunchConfig& launch);

// Stable JSON rendering for `resccl bound --json`.
[[nodiscard]] std::string BoundReportToJson(const BoundReport& report);

}  // namespace resccl
