// Static plan verification: prove a compiled plan safe before Execute.
//
// The only correctness signals used to be dynamic — SimMachine throws on
// deadlock mid-run, and data verification needs a full engine replay. With
// the plan cache and on-disk plan_io, a corrupted or hand-edited plan can
// reach Execute without ever having been simulated. AnalyzePlan() closes
// that gap with a purely static pass over CompiledCollective +
// LoweredProgram (no simulation, no data movement):
//
//   structure      indices in range, waves cover every task exactly once,
//                  TB refs consistent with the algorithm and stage map —
//                  the preconditions Lower() and SimMachine otherwise
//                  enforce with internal-invariant throws.
//   rendezvous     every transfer declaration has exactly one send-side and
//                  one recv-side instruction, each on a TB of the right
//                  rank; barrier arrival counts match their party counts.
//                  (Both sides reference the same declaration, so chunk,
//                  size, and protocol agreement is by construction; the
//                  checks cover multiplicity and placement.)
//   deadlock       the wait-for graph induced by per-TB FIFO issue order,
//                  cross-TB rendezvous, data dependencies, and barriers is
//                  acyclic; cycles are reported with a witness path in the
//                  shared sim/witness.h vocabulary.
//   hazard         every RAW/WAW/WAR pair on a (chunk, rank) buffer slot —
//                  recomputed with the sweep of src/core/dag.cc as the
//                  spec — is ordered by the plan's dependency edges.
//   tb-merge       connection active intervals are independently recomputed
//                  with the allocator's timeline model (src/core/tb_alloc.h,
//                  Eq. 7) and no TB holds two overlapping streams.
//   postcondition  an abstract replay over multisets of contributing ranks
//                  shows every rank ends holding exactly the chunks its
//                  CollectiveOp requires.
//
// The tb-merge rule is the only one that needs a Topology (path latencies /
// bandwidths feed the timeline); pass nullptr to skip it — the report says
// so via tb_merge_checked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "runtime/lowering.h"
#include "topology/topology.h"

namespace resccl {

// Stable rule identifiers, used in diagnostics, lint output, and tests.
namespace rules {
inline constexpr const char* kStructure = "structure";
inline constexpr const char* kRendezvous = "rendezvous";
inline constexpr const char* kDeadlock = "deadlock";
inline constexpr const char* kHazard = "hazard";
inline constexpr const char* kTbMerge = "tb-merge";
inline constexpr const char* kPostcondition = "postcondition";
inline constexpr const char* kChannelCapacity = "channel-capacity";
}  // namespace rules

// kError fails strict verification and flips lint's exit code; kWarning is
// a correctness smell that does neither; kAdvice is the performance-lint
// class (analysis/perf_rules.h) — purely advisory, opt-in strictness via
// `resccl lint --strict-perf`.
enum class DiagSeverity : std::uint8_t { kError, kWarning, kAdvice };

[[nodiscard]] constexpr const char* DiagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kError: return "error";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kAdvice: return "advice";
  }
  return "?";
}

// One analyzer finding: which rule fired, where, and the evidence chain.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  std::string rule_id;   // one of rules::k*
  std::string location;  // "task#12", "tb#3 instr#7", "preds", ...
  std::string witness;   // human-readable evidence (wait-for chain, ...)
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  double analysis_us = 0;
  bool tb_merge_checked = false;  // false when no topology was supplied

  [[nodiscard]] int errors() const;
  [[nodiscard]] int warnings() const;
  [[nodiscard]] int advice() const;
  [[nodiscard]] bool clean() const { return errors() == 0; }
  // "clean (6 rules)" or "2 error(s): first = [deadlock] ...".
  [[nodiscard]] std::string Summary() const;
};

// Verifies `plan` against the lowered program the runtime would execute.
// Never throws on plans that passed plan_io's LoadPlan (or came out of
// Compile): structural problems become diagnostics, not exceptions.
[[nodiscard]] AnalysisReport AnalyzePlan(const CompiledCollective& plan,
                                         const LoweredProgram& lowered,
                                         const Topology* topo = nullptr);

// Convenience overload: lowers `plan` with a canonical two-micro-batch
// launch first (enough to exercise cross-micro-batch interleavings in every
// execution mode), then analyzes. If the plan's structure is too broken to
// lower safely, the lowered-program rules are skipped and the structure
// diagnostics alone are returned.
[[nodiscard]] AnalysisReport AnalyzePlan(const CompiledCollective& plan,
                                         const Topology* topo = nullptr);

// JSON rendering of a report (stable schema for `resccl lint --json`).
[[nodiscard]] std::string AnalysisReportToJson(const AnalysisReport& report);

}  // namespace resccl
