#include "analysis/analyzer.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/connection.h"
#include "obs/json.h"
#include "sim/witness.h"

namespace resccl {

namespace {

// Witness strings are built only when a rule fires, so the clean path (the
// strict-mode Prepare() hot path) stays allocation-light.
constexpr int kMaxDiagsPerRule = 16;

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

void Emit(AnalysisReport& report, const char* rule, std::string location,
          std::string witness) {
  report.diagnostics.push_back({DiagSeverity::kError, rule,
                                std::move(location), std::move(witness)});
}

std::string TaskName(const Algorithm& algo, int task) {
  const Transfer& t = algo.transfers[static_cast<std::size_t>(task)];
  std::ostringstream os;
  os << "task#" << task << "(r" << t.src << "->r" << t.dst << " step "
     << t.step << " " << TransferOpName(t.op) << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// structure: every index the lowering and the machine would otherwise defend
// with internal-invariant throws, verified up front so a corrupted plan is a
// diagnostic, never an exception.
// ---------------------------------------------------------------------------

struct StructureVerdict {
  bool algo_ok = false;      // algorithm validates, topology (if any) matches
  bool preds_ok = false;     // dependency lists shaped and in range
  bool schedule_ok = false;  // waves cover every task exactly once
  bool tbs_ok = false;       // TB plan consistent (ranks, stages, assignment)
  [[nodiscard]] bool lowerable() const {
    return algo_ok && preds_ok && schedule_ok && tbs_ok;
  }
};

StructureVerdict CheckStructure(const CompiledCollective& plan,
                                const Topology* topo, AnalysisReport& report) {
  StructureVerdict v;
  int emitted = 0;
  const auto err = [&](std::string location, std::string witness) {
    if (emitted++ < kMaxDiagsPerRule) {
      Emit(report, rules::kStructure, std::move(location), std::move(witness));
    }
  };

  const int ntasks = plan.algo.ntasks();
  const auto n = static_cast<std::size_t>(ntasks);

  v.algo_ok = true;
  if (Status s = plan.algo.Validate(); !s.ok()) {
    err("algorithm", "algorithm invalid: " + s.message());
    v.algo_ok = false;
  }
  if (topo != nullptr && topo->nranks() != plan.algo.nranks) {
    err("algorithm",
        "algorithm is for " + std::to_string(plan.algo.nranks) +
            " ranks but the topology has " + std::to_string(topo->nranks()));
    v.algo_ok = false;
  }
  if (plan.nstages < 1) {
    err("nstages", "plan declares " + std::to_string(plan.nstages) +
                       " stages; at least one is required");
    v.algo_ok = false;
  }

  // Dependency lists.
  v.preds_ok = plan.preds.size() == n;
  if (!v.preds_ok) {
    err("preds", "dependency table has " + std::to_string(plan.preds.size()) +
                     " entries for " + std::to_string(ntasks) + " tasks");
  } else {
    for (int t = 0; t < ntasks && v.preds_ok; ++t) {
      for (int p : plan.preds[static_cast<std::size_t>(t)]) {
        if (p < 0 || p >= ntasks || p == t) {
          err("task#" + std::to_string(t),
              "dependency predecessor " + std::to_string(p) +
                  " is out of range or self-referential");
          v.preds_ok = false;
          break;
        }
      }
    }
  }

  // Schedule coverage: each task in exactly one sub-pipeline.
  v.schedule_ok = true;
  std::vector<int> occurrences(n, 0);
  for (std::size_t w = 0; w < plan.schedule.sub_pipelines.size(); ++w) {
    for (TaskId t : plan.schedule.sub_pipelines[w]) {
      if (!t.valid() || t.value >= ntasks) {
        err("schedule", "wave " + std::to_string(w) +
                            " references a task outside the algorithm");
        v.schedule_ok = false;
      } else {
        ++occurrences[static_cast<std::size_t>(t.value)];
      }
    }
  }
  if (v.schedule_ok) {
    for (int t = 0; t < ntasks; ++t) {
      if (occurrences[static_cast<std::size_t>(t)] != 1) {
        err("task#" + std::to_string(t),
            "appears " +
                std::to_string(occurrences[static_cast<std::size_t>(t)]) +
                " times in the schedule (exactly once required)");
        v.schedule_ok = false;
      }
    }
  }

  // Stage map.
  bool stages_ok = plan.stage_of_task.size() == n;
  if (!stages_ok) {
    err("stages", "stage map has " + std::to_string(plan.stage_of_task.size()) +
                      " entries for " + std::to_string(ntasks) + " tasks");
  } else {
    for (int t = 0; t < ntasks; ++t) {
      const int s = plan.stage_of_task[static_cast<std::size_t>(t)];
      if (s < 0 || s >= plan.nstages) {
        err("task#" + std::to_string(t),
            "stage " + std::to_string(s) + " outside [0, " +
                std::to_string(plan.nstages) + ")");
        stages_ok = false;
        break;
      }
    }
  }

  // TB plan: refs in range, endpoint ranks consistent with the algorithm,
  // stage-pure TBs under stage-level execution, assignment tables coherent.
  v.tbs_ok = stages_ok && v.algo_ok && v.schedule_ok;
  const std::size_t ntbs = plan.tbs.tbs.size();
  if (ntbs == 0) {
    err("tbs", "plan has no thread blocks");
    v.tbs_ok = false;
  }
  const bool tables_sized =
      plan.tbs.send_tb.size() == n && plan.tbs.recv_tb.size() == n;
  if (!tables_sized) {
    err("tbs", "per-task TB assignment tables are missized");
    v.tbs_ok = false;
  }
  for (std::size_t i = 0; i < ntbs; ++i) {
    const TbPlan::Tb& tb = plan.tbs.tbs[i];
    // Built lazily: this loop visits every TB on every strict Prepare.
    const auto loc = [i] { return "tb#" + std::to_string(i); };
    if (tb.refs.empty()) {
      err(loc(), "thread block has no task refs");
      v.tbs_ok = false;
      continue;
    }
    if (tb.rank < 0 || tb.rank >= plan.algo.nranks) {
      err(loc(), "rank " + std::to_string(tb.rank) + " out of range");
      v.tbs_ok = false;
      continue;
    }
    int tb_stage = -1;
    for (const TbTaskRef& ref : tb.refs) {
      if (!ref.task.valid() || ref.task.value >= ntasks) {
        err(loc(), "ref names task " + std::to_string(ref.task.value) +
                     " outside the algorithm");
        v.tbs_ok = false;
        continue;
      }
      const auto task = static_cast<std::size_t>(ref.task.value);
      if (v.algo_ok) {
        const Transfer& tr = plan.algo.transfers[task];
        const Rank expect = ref.dir == Direction::kSend ? tr.src : tr.dst;
        if (tb.rank != expect) {
          err(loc(), std::string("holds the ") +
                       (ref.dir == Direction::kSend ? "send" : "recv") +
                       " side of task#" + std::to_string(ref.task.value) +
                       ", which lives on r" + std::to_string(expect) +
                       ", but the TB runs on r" + std::to_string(tb.rank));
          v.tbs_ok = false;
        }
      }
      if (stages_ok && plan.options.mode == ExecutionMode::kStageLevel) {
        const int s = plan.stage_of_task[task];
        if (tb_stage == -1) {
          tb_stage = s;
        } else if (s != tb_stage) {
          err(loc(), "spans stages " + std::to_string(tb_stage) + " and " +
                       std::to_string(s) +
                       " — stage-level lowering requires stage-pure TBs");
          v.tbs_ok = false;
        }
      }
      if (tables_sized) {
        const auto& table = ref.dir == Direction::kSend ? plan.tbs.send_tb
                                                        : plan.tbs.recv_tb;
        if (table[task] != static_cast<int>(i)) {
          err(loc(), "ref/assignment mismatch for task#" +
                       std::to_string(ref.task.value));
          v.tbs_ok = false;
        }
      }
    }
  }
  if (tables_sized) {
    for (int t = 0; t < ntasks; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const int s = plan.tbs.send_tb[ti];
      const int r = plan.tbs.recv_tb[ti];
      if (s < 0 || static_cast<std::size_t>(s) >= ntbs || r < 0 ||
          static_cast<std::size_t>(r) >= ntbs) {
        err("task#" + std::to_string(t), "has no (or an out-of-range) TB "
                                         "assignment for one of its sides");
        v.tbs_ok = false;
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// hazard: recompute the RAW/WAW/WAR pairs with the sweep of core/dag.cc as
// the spec, then require each pair to be ordered by the plan's dependency
// edges (transitively). A cyclic dependency table is itself reported — as a
// deadlock, with a task-level witness.
// ---------------------------------------------------------------------------

struct RequiredEdge {
  int from = -1;
  int to = -1;
  const char* kind = "";  // "RAW" / "WAW" / "WAR"
  ChunkId chunk = 0;
  Rank slot = kInvalidRank;
};

// Mirrors DependencyGraph's construction sweep (core/dag.cc): per chunk, in
// step order, same-step groups concurrent; emits the (from, to) pairs the
// DAG would have drawn as edges, deduplicated per ordered pair exactly like
// AddEdge does.
std::vector<RequiredEdge> RequiredHazardEdges(const Algorithm& algo) {
  struct SlotState {
    std::vector<int> writers;
    std::vector<int> readers;
    bool group_stamped = false;
  };

  std::vector<RequiredEdge> out;
  out.reserve(algo.transfers.size() * 2);
  // All (from, to) pairs for a given `to` are generated while that task's
  // group entry is processed, and each task is processed exactly once — so a
  // per-`from` stamp of the current `to` dedups ordered pairs exactly like
  // dag.cc's AddEdge hash, without the hash.
  std::vector<int> stamp(algo.transfers.size(), -1);
  const auto add = [&](int from, int to, const char* kind, ChunkId chunk,
                       Rank slot) {
    if (from == to) return;
    if (stamp[static_cast<std::size_t>(from)] == to) return;
    stamp[static_cast<std::size_t>(from)] = to;
    out.push_back({from, to, kind, chunk, slot});
  };

  std::vector<std::vector<int>> chunk_tasks(
      static_cast<std::size_t>(algo.nchunks));
  for (std::size_t i = 0; i < algo.transfers.size(); ++i) {
    chunk_tasks[static_cast<std::size_t>(algo.transfers[i].chunk)].push_back(
        static_cast<int>(i));
  }

  std::vector<SlotState> slots(static_cast<std::size_t>(algo.nranks));
  for (std::size_t c = 0; c < chunk_tasks.size(); ++c) {
    auto& chunk = chunk_tasks[c];
    std::stable_sort(chunk.begin(), chunk.end(), [&](int a, int b) {
      return algo.transfers[static_cast<std::size_t>(a)].step <
             algo.transfers[static_cast<std::size_t>(b)].step;
    });
    for (auto& s : slots) {
      s.writers.clear();
      s.readers.clear();
    }
    std::size_t group_begin = 0;
    while (group_begin < chunk.size()) {
      std::size_t group_end = group_begin;
      const Step step =
          algo.transfers[static_cast<std::size_t>(chunk[group_begin])].step;
      while (group_end < chunk.size() &&
             algo.transfers[static_cast<std::size_t>(chunk[group_end])].step ==
                 step) {
        ++group_end;
      }
      const auto cid = static_cast<ChunkId>(c);
      for (std::size_t i = group_begin; i < group_end; ++i) {
        const int id = chunk[i];
        const Transfer& t = algo.transfers[static_cast<std::size_t>(id)];
        SlotState& src_slot = slots[static_cast<std::size_t>(t.src)];
        SlotState& dst_slot = slots[static_cast<std::size_t>(t.dst)];
        for (int writer : src_slot.writers) add(writer, id, "RAW", cid, t.src);
        for (int writer : dst_slot.writers) add(writer, id, "WAW", cid, t.dst);
        for (int reader : dst_slot.readers) {
          if (reader != id) add(reader, id, "WAR", cid, t.dst);
        }
      }
      for (std::size_t i = group_begin; i < group_end; ++i) {
        const Transfer& t =
            algo.transfers[static_cast<std::size_t>(chunk[i])];
        SlotState& dst_slot = slots[static_cast<std::size_t>(t.dst)];
        if (!dst_slot.group_stamped) {
          dst_slot.writers.clear();
          dst_slot.readers.clear();
          dst_slot.group_stamped = true;
        }
        dst_slot.writers.push_back(chunk[i]);
      }
      for (std::size_t i = group_begin; i < group_end; ++i) {
        const Transfer& t =
            algo.transfers[static_cast<std::size_t>(chunk[i])];
        slots[static_cast<std::size_t>(t.dst)].group_stamped = false;
      }
      for (std::size_t i = group_begin; i < group_end; ++i) {
        const Transfer& t =
            algo.transfers[static_cast<std::size_t>(chunk[i])];
        slots[static_cast<std::size_t>(t.src)].readers.push_back(chunk[i]);
      }
      group_begin = group_end;
    }
  }
  return out;
}

void CheckHazards(const CompiledCollective& plan, AnalysisReport& report) {
  const int ntasks = plan.algo.ntasks();
  const auto n = static_cast<std::size_t>(ntasks);

  // Kahn over the plan's dependency edges. A cycle makes the plan
  // unexecutable regardless of lowering — report it as a deadlock with a
  // task-level witness and skip the reachability queries.
  // Flat CSR successor lists — no per-task vector allocations.
  std::vector<int> indegree(n, 0);
  std::vector<int> succ_off(n + 1, 0);
  for (int t = 0; t < ntasks; ++t) {
    const auto& preds = plan.preds[static_cast<std::size_t>(t)];
    indegree[static_cast<std::size_t>(t)] = static_cast<int>(preds.size());
    for (int p : preds) ++succ_off[static_cast<std::size_t>(p) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) succ_off[v + 1] += succ_off[v];
  std::vector<int> succ_nodes(static_cast<std::size_t>(succ_off[n]));
  {
    std::vector<int> fill(succ_off.begin(), succ_off.end() - 1);
    for (int t = 0; t < ntasks; ++t) {
      for (int p : plan.preds[static_cast<std::size_t>(t)]) {
        succ_nodes[static_cast<std::size_t>(
            fill[static_cast<std::size_t>(p)]++)] = t;
      }
    }
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (int t = 0; t < ntasks; ++t) {
    if (indegree[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
  }
  std::vector<char> done(n, 0);
  while (!ready.empty()) {
    const int u = ready.back();
    ready.pop_back();
    done[static_cast<std::size_t>(u)] = 1;
    order.push_back(u);
    for (int k = succ_off[static_cast<std::size_t>(u)];
         k < succ_off[static_cast<std::size_t>(u) + 1]; ++k) {
      const int s = succ_nodes[static_cast<std::size_t>(k)];
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (order.size() != n) {
    // Walk backwards through unprocessed predecessors until a node repeats.
    int start = -1;
    for (int t = 0; t < ntasks; ++t) {
      if (!done[static_cast<std::size_t>(t)]) {
        start = t;
        break;
      }
    }
    RESCCL_CHECK(start >= 0);
    std::unordered_map<int, std::size_t> position;
    std::vector<int> path;
    int cur = start;
    while (position.find(cur) == position.end()) {
      position[cur] = path.size();
      path.push_back(cur);
      int next = -1;
      for (int p : plan.preds[static_cast<std::size_t>(cur)]) {
        if (!done[static_cast<std::size_t>(p)]) {
          next = p;
          break;
        }
      }
      RESCCL_CHECK(next >= 0);
      cur = next;
    }
    std::ostringstream os;
    for (std::size_t i = position[cur]; i < path.size(); ++i) {
      os << "task#" << path[i] << " waits " << WitnessDataDep() << " on ";
    }
    os << "task#" << cur << " — the dependency edges form a cycle";
    Emit(report, rules::kDeadlock, "preds", os.str());
    return;
  }

  // Each required pair must be ordered by the dependency edges,
  // transitively. The compiler emits every hazard pair as a *direct* edge
  // (dag.cc AddEdge), so the common case is a constant-time membership test
  // against plan.preds — the transitive closure is never materialized. Only
  // a pair with no direct edge (a foreign or pruned plan) pays for a
  // backward reachability walk, and only that pair.
  std::vector<int> direct_stamp(n, -1);
  std::vector<char> visited(n, 0);
  std::vector<int> stack;
  std::vector<int> touched;
  const auto reaches = [&](int from, int to) {
    // Backward DFS from `to` through preds, looking for `from`. Exact; the
    // graph is acyclic here (Kahn succeeded above).
    bool found = false;
    stack.clear();
    touched.clear();
    stack.push_back(to);
    visited[static_cast<std::size_t>(to)] = 1;
    touched.push_back(to);
    while (!stack.empty() && !found) {
      const int u = stack.back();
      stack.pop_back();
      for (int p : plan.preds[static_cast<std::size_t>(u)]) {
        if (p == from) {
          found = true;
          break;
        }
        if (!visited[static_cast<std::size_t>(p)]) {
          visited[static_cast<std::size_t>(p)] = 1;
          touched.push_back(p);
          stack.push_back(p);
        }
      }
    }
    for (int u : touched) visited[static_cast<std::size_t>(u)] = 0;
    return found;
  };

  int emitted = 0;
  int marked_to = -1;
  for (const RequiredEdge& e : RequiredHazardEdges(plan.algo)) {
    // Required edges arrive grouped by `to`; refresh the direct-pred marks
    // once per group.
    if (e.to != marked_to) {
      marked_to = e.to;
      for (int p : plan.preds[static_cast<std::size_t>(e.to)]) {
        direct_stamp[static_cast<std::size_t>(p)] = e.to;
      }
    }
    if (direct_stamp[static_cast<std::size_t>(e.from)] == e.to) continue;
    if (reaches(e.from, e.to)) continue;
    if (emitted++ >= kMaxDiagsPerRule) break;
    std::ostringstream os;
    os << e.kind << " hazard on chunk " << e.chunk << " at r" << e.slot
       << "'s slot: " << TaskName(plan.algo, e.from) << " must precede "
       << TaskName(plan.algo, e.to)
       << " but no dependency path orders them";
    Emit(report, rules::kHazard, "task#" + std::to_string(e.to), os.str());
  }
}

// ---------------------------------------------------------------------------
// postcondition: abstract replay over multisets of contributing ranks. The
// content of (rank, chunk) slots is abstracted to "which ranks' original
// chunk-c contributions, with what multiplicity" — recv replaces, rrc
// accumulates — and the final state is compared against the collective's
// contract (the value-level twin of memory/reference.cc's VerifyCollective).
// ---------------------------------------------------------------------------

// Index = origin rank, value = multiplicity. Flat so the replay's snapshot
// copies stay memcpy-cheap — this check runs on every strict-mode Prepare.
using SlotContent = std::vector<int>;

std::string FormatContent(const SlotContent& content) {
  std::ostringstream os;
  os << "{";
  int shown = 0;
  for (std::size_t r = 0; r < content.size(); ++r) {
    if (content[r] == 0) continue;
    if (shown > 0) os << ",";
    if (++shown > 8) {
      os << "...";
      break;
    }
    os << "r" << r;
    if (content[r] != 1) os << "x" << content[r];
  }
  os << "}";
  return os.str();
}

void CheckPostcondition(const CompiledCollective& plan,
                        AnalysisReport& report) {
  const Algorithm& algo = plan.algo;
  const auto nranks = static_cast<std::size_t>(algo.nranks);
  int emitted = 0;
  const auto err = [&](std::string location, std::string witness) {
    if (emitted++ < kMaxDiagsPerRule) {
      Emit(report, rules::kPostcondition, std::move(location),
           std::move(witness));
    }
  };

  const SlotContent everyone(nranks, 1);

  std::vector<std::vector<int>> chunk_tasks(
      static_cast<std::size_t>(algo.nchunks));
  for (std::size_t i = 0; i < algo.transfers.size(); ++i) {
    chunk_tasks[static_cast<std::size_t>(algo.transfers[i].chunk)].push_back(
        static_cast<int>(i));
  }

  // Same-step tasks are concurrent: reads see the pre-group state. Source
  // snapshots live in one flat pool (stride nranks) so a group costs no
  // per-write allocations.
  struct Write {
    Rank dst;
    int task;
    TransferOp op;
    std::size_t snap;  // offset of this write's source snapshot in the pool
  };
  std::vector<Write> writes;
  std::vector<int> snap_pool;
  std::vector<SlotContent> slot(nranks, SlotContent(nranks, 0));
  for (std::size_t c = 0; c < chunk_tasks.size(); ++c) {
    auto& chunk = chunk_tasks[c];
    std::stable_sort(chunk.begin(), chunk.end(), [&](int a, int b) {
      return algo.transfers[static_cast<std::size_t>(a)].step <
             algo.transfers[static_cast<std::size_t>(b)].step;
    });
    // Initially every rank holds its own contribution for this chunk.
    for (Rank r = 0; r < algo.nranks; ++r) {
      auto& s = slot[static_cast<std::size_t>(r)];
      std::fill(s.begin(), s.end(), 0);
      s[static_cast<std::size_t>(r)] = 1;
    }

    std::size_t group_begin = 0;
    while (group_begin < chunk.size()) {
      std::size_t group_end = group_begin;
      const Step step =
          algo.transfers[static_cast<std::size_t>(chunk[group_begin])].step;
      while (group_end < chunk.size() &&
             algo.transfers[static_cast<std::size_t>(chunk[group_end])].step ==
                 step) {
        ++group_end;
      }
      writes.clear();
      snap_pool.clear();
      for (std::size_t i = group_begin; i < group_end; ++i) {
        const int id = chunk[i];
        const Transfer& t = algo.transfers[static_cast<std::size_t>(id)];
        const SlotContent& src = slot[static_cast<std::size_t>(t.src)];
        writes.push_back({t.dst, id, t.op, snap_pool.size()});
        snap_pool.insert(snap_pool.end(), src.begin(), src.end());
      }
      std::stable_sort(writes.begin(), writes.end(),
                       [](const Write& a, const Write& b) {
                         return a.dst < b.dst;
                       });
      for (std::size_t lo = 0; lo < writes.size();) {
        std::size_t hi = lo;
        const Rank dst = writes[lo].dst;
        while (hi < writes.size() && writes[hi].dst == dst) ++hi;
        const bool any_recv =
            std::any_of(writes.begin() + static_cast<std::ptrdiff_t>(lo),
                        writes.begin() + static_cast<std::ptrdiff_t>(hi),
                        [](const Write& w) {
                          return w.op == TransferOp::kRecv;
                        });
        SlotContent& target = slot[static_cast<std::size_t>(dst)];
        if (any_recv && hi - lo > 1) {
          std::ostringstream os;
          os << "concurrent step-" << step << " writes to r" << dst
             << "'s chunk " << c << " slot (";
          for (std::size_t k = lo; k < hi; ++k) {
            if (k > lo) os << ", ";
            os << "task#" << writes[k].task;
          }
          os << ") include a plain recv — the result is order-dependent";
          err("rank " + std::to_string(dst) + " chunk " + std::to_string(c),
              os.str());
        }
        if (any_recv) {
          // A copy overwrites; pick the first for determinism (the
          // ambiguity, if any, was reported above).
          for (std::size_t k = lo; k < hi; ++k) {
            if (writes[k].op == TransferOp::kRecv) {
              const int* snap = snap_pool.data() + writes[k].snap;
              std::copy(snap, snap + nranks, target.begin());
              break;
            }
          }
        } else {
          // Concurrent reductions commute into the slot.
          for (std::size_t k = lo; k < hi; ++k) {
            const int* snap = snap_pool.data() + writes[k].snap;
            for (std::size_t r = 0; r < nranks; ++r) target[r] += snap[r];
          }
        }
        lo = hi;
      }
      group_begin = group_end;
    }

    // Compare against the collective contract, slot by slot.
    const auto expect = [&](Rank r, const SlotContent& want) {
      const SlotContent& got = slot[static_cast<std::size_t>(r)];
      if (got == want) return;
      err("rank " + std::to_string(r) + " chunk " + std::to_string(c),
          "ends holding " + FormatContent(got) + " but " +
              CollectiveOpName(algo.collective) + " requires " +
              FormatContent(want));
    };
    const auto cid = static_cast<Rank>(c);
    SlotContent just_one(nranks, 0);
    switch (algo.collective) {
      case CollectiveOp::kAllGather:
        // cid >= nranks is unsatisfiable either way; the guard only keeps
        // the index in range.
        if (c < nranks) just_one[c] = 1;
        for (Rank r = 0; r < algo.nranks; ++r) expect(r, just_one);
        break;
      case CollectiveOp::kAllReduce:
        for (Rank r = 0; r < algo.nranks; ++r) expect(r, everyone);
        break;
      case CollectiveOp::kReduceScatter:
        // Only the owning rank's slot is specified.
        if (cid >= 0 && cid < algo.nranks) expect(cid, everyone);
        break;
      case CollectiveOp::kBroadcast:
        just_one[static_cast<std::size_t>(algo.root)] = 1;
        for (Rank r = 0; r < algo.nranks; ++r) expect(r, just_one);
        break;
      case CollectiveOp::kReduce:
        expect(algo.root, everyone);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// lowered-program structure, rendezvous, and the wait-for deadlock check.
// ---------------------------------------------------------------------------

bool CheckLoweredStructure(const CompiledCollective& plan,
                           const SimProgram& program, AnalysisReport& report) {
  bool ok = true;
  int emitted = 0;
  const auto err = [&](std::string location, std::string witness) {
    ok = false;
    if (emitted++ < kMaxDiagsPerRule) {
      Emit(report, rules::kStructure, std::move(location), std::move(witness));
    }
  };
  const int nranks = plan.algo.nranks;
  const auto ntransfers = program.transfers.size();

  for (std::size_t t = 0; t < ntransfers; ++t) {
    const SimTransferDecl& decl = program.transfers[t];
    // Location strings only materialize on a failure.
    const auto loc = [t] { return "transfer#" + std::to_string(t); };
    if (decl.src < 0 || decl.src >= nranks || decl.dst < 0 ||
        decl.dst >= nranks) {
      err(loc(), "endpoint rank out of range");
      continue;
    }
    if (decl.src == decl.dst) err(loc(), "self-loop transfer");
    if (decl.bytes <= 0) err(loc(), "non-positive byte count");
    for (int d : decl.deps) {
      if (d < 0 || static_cast<std::size_t>(d) >= ntransfers) {
        err(loc(), "dependency " + std::to_string(d) + " out of range");
      } else if (static_cast<std::size_t>(d) == t) {
        err(loc(), "depends on itself");
      }
    }
  }
  for (std::size_t i = 0; i < program.tbs.size(); ++i) {
    const SimTb& tb = program.tbs[i];
    if (tb.rank < 0 || tb.rank >= nranks) {
      err("tb#" + std::to_string(i), "rank out of range");
      continue;
    }
    for (std::size_t j = 0; j < tb.program.size(); ++j) {
      const SimInstr& instr = tb.program[j];
      const auto loc = [i, j] {
        return "tb#" + std::to_string(i) + " instr#" + std::to_string(j);
      };
      if (instr.kind == SimInstr::Kind::kBarrier) {
        if (instr.barrier < 0 ||
            static_cast<std::size_t>(instr.barrier) >=
                program.barrier_parties.size()) {
          err(loc(), "barrier id out of range");
        }
      } else if (instr.transfer < 0 ||
                 static_cast<std::size_t>(instr.transfer) >= ntransfers) {
        err(loc(), "transfer id out of range");
      }
    }
  }
  return ok;
}

void CheckRendezvous(const SimProgram& program, AnalysisReport& report) {
  int emitted = 0;
  const auto err = [&](std::string location, std::string witness) {
    if (emitted++ < kMaxDiagsPerRule) {
      Emit(report, rules::kRendezvous, std::move(location),
           std::move(witness));
    }
  };

  struct Side {
    int count = 0;
    std::size_t tb = SIZE_MAX;  // first TB that issues this side
  };
  const auto ntransfers = program.transfers.size();
  std::vector<Side> send(ntransfers);
  std::vector<Side> recv(ntransfers);
  std::vector<int> arrivals(program.barrier_parties.size(), 0);
  for (std::size_t i = 0; i < program.tbs.size(); ++i) {
    for (const SimInstr& instr : program.tbs[i].program) {
      if (instr.kind == SimInstr::Kind::kBarrier) {
        ++arrivals[static_cast<std::size_t>(instr.barrier)];
        continue;
      }
      Side& side = instr.kind == SimInstr::Kind::kSendSide
                       ? send[static_cast<std::size_t>(instr.transfer)]
                       : recv[static_cast<std::size_t>(instr.transfer)];
      if (side.count++ == 0) side.tb = i;
    }
  }

  for (std::size_t t = 0; t < ntransfers; ++t) {
    const SimTransferDecl& decl = program.transfers[t];
    const auto check_side = [&](const Side& side, bool is_send, Rank expect) {
      // Fast path: exactly one side on the right rank — no strings built.
      if (side.count == 1 && program.tbs[side.tb].rank == expect) return;
      const std::string name = WitnessTransfer(program, static_cast<int>(t));
      const char* label = is_send ? "sender" : "receiver";
      if (side.count == 0) {
        err(name, std::string("no ") + label + " joined: no TB issues the " +
                      (is_send ? "send" : "recv") + std::string(" side"));
        return;
      }
      if (side.count > 1) {
        err(name, std::to_string(side.count) + " " +
                      (is_send ? "send" : "recv") +
                      " sides issued — exactly one TB may drive a side");
        return;
      }
      const Rank got = program.tbs[side.tb].rank;
      if (got != expect) {
        err(name, std::string(label) + " side issued on tb#" +
                      std::to_string(side.tb) + " (r" + std::to_string(got) +
                      ") but the transfer's " +
                      (is_send ? "source" : "destination") + " is r" +
                      std::to_string(expect));
      }
    };
    check_side(send[t], /*is_send=*/true, decl.src);
    check_side(recv[t], /*is_send=*/false, decl.dst);
  }
  for (std::size_t b = 0; b < program.barrier_parties.size(); ++b) {
    if (arrivals[b] != program.barrier_parties[b]) {
      err(WitnessBarrier(static_cast<int>(b)),
          std::to_string(arrivals[b]) + " TB arrival(s) for " +
              std::to_string(program.barrier_parties[b]) +
              " parties — the barrier can never release cleanly");
    }
  }
}

void CheckDeadlock(const SimProgram& program, AnalysisReport& report) {
  // Wait-for graph: one node per transfer declaration and per barrier; an
  // edge u -> v means v cannot complete until u does. Sources of edges:
  //   program order  a TB arrives at instruction k only after instruction
  //                  k-1 releases it (rendezvous completion / barrier
  //                  release);
  //   data deps      a transfer starts only after its same-micro-batch
  //                  predecessors complete;
  //   barriers       a barrier releases only after every party arrives
  //                  (covered by the program-order edges from each party's
  //                  previous instruction).
  const std::size_t ntransfers = program.transfers.size();
  const std::size_t nbarriers = program.barrier_parties.size();
  const std::size_t nnodes = ntransfers + nbarriers;

  // Flat CSR adjacency — this runs on every strict-mode Prepare, so no
  // per-node vector allocations. An edge's tb < 0 marks it as a data dep.
  struct Edge {
    int pred = -1;
    int tb = -1;  // issuing TB for program-order edges; -1 for data deps
    [[nodiscard]] bool data_dep() const { return tb < 0; }
  };
  const auto node_of = [ntransfers](const SimInstr& instr) {
    return instr.kind == SimInstr::Kind::kBarrier
               ? static_cast<int>(ntransfers) + instr.barrier
               : instr.transfer;
  };
  std::vector<int> pred_off(nnodes + 1, 0);
  std::vector<int> succ_off(nnodes + 1, 0);
  for (const SimTb& tb : program.tbs) {
    int prev = -1;
    for (const SimInstr& instr : tb.program) {
      const int node = node_of(instr);
      if (prev >= 0) {
        ++pred_off[static_cast<std::size_t>(node) + 1];
        ++succ_off[static_cast<std::size_t>(prev) + 1];
      }
      prev = node;
    }
  }
  for (std::size_t t = 0; t < ntransfers; ++t) {
    for (int d : program.transfers[t].deps) {
      ++pred_off[t + 1];
      ++succ_off[static_cast<std::size_t>(d) + 1];
    }
  }
  for (std::size_t v = 0; v < nnodes; ++v) {
    pred_off[v + 1] += pred_off[v];
    succ_off[v + 1] += succ_off[v];
  }
  std::vector<Edge> pred_edges(static_cast<std::size_t>(pred_off[nnodes]));
  std::vector<int> succ_nodes(static_cast<std::size_t>(succ_off[nnodes]));
  std::vector<int> pred_fill(pred_off.begin(), pred_off.end() - 1);
  std::vector<int> succ_fill(succ_off.begin(), succ_off.end() - 1);
  const auto add = [&](std::size_t node, int pred, int tb) {
    pred_edges[static_cast<std::size_t>(pred_fill[node]++)] = {pred, tb};
    succ_nodes[static_cast<std::size_t>(
        succ_fill[static_cast<std::size_t>(pred)]++)] =
        static_cast<int>(node);
  };
  for (std::size_t i = 0; i < program.tbs.size(); ++i) {
    int prev = -1;
    for (const SimInstr& instr : program.tbs[i].program) {
      const int node = node_of(instr);
      if (prev >= 0) add(static_cast<std::size_t>(node), prev, static_cast<int>(i));
      prev = node;
    }
  }
  for (std::size_t t = 0; t < ntransfers; ++t) {
    for (int d : program.transfers[t].deps) add(t, d, -1);
  }

  std::vector<int> indegree(nnodes, 0);
  std::vector<int> ready;
  for (std::size_t v = 0; v < nnodes; ++v) {
    indegree[v] = pred_off[v + 1] - pred_off[v];
    if (indegree[v] == 0) ready.push_back(static_cast<int>(v));
  }
  std::vector<char> done(nnodes, 0);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const int u = ready.back();
    ready.pop_back();
    done[static_cast<std::size_t>(u)] = 1;
    ++processed;
    for (int k = succ_off[static_cast<std::size_t>(u)];
         k < succ_off[static_cast<std::size_t>(u) + 1]; ++k) {
      const int v = succ_nodes[static_cast<std::size_t>(k)];
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  if (processed == nnodes) return;

  // Every unprocessed node has an unprocessed predecessor, so walking the
  // wait-for edges backwards from any of them must revisit a node: a cycle.
  int start = -1;
  for (std::size_t v = 0; v < nnodes; ++v) {
    if (!done[v]) {
      start = static_cast<int>(v);
      break;
    }
  }
  RESCCL_CHECK(start >= 0);
  const auto node_name = [&](int node) {
    return node < static_cast<int>(ntransfers)
               ? WitnessTransfer(program, node)
               : WitnessBarrier(node - static_cast<int>(ntransfers));
  };
  std::unordered_map<int, std::size_t> position;
  std::vector<int> path;
  std::vector<Edge> via;  // via[i]: edge from path[i] back to path[i+1]
  int cur = start;
  while (position.find(cur) == position.end()) {
    position[cur] = path.size();
    path.push_back(cur);
    const Edge* taken = nullptr;
    for (int k = pred_off[static_cast<std::size_t>(cur)];
         k < pred_off[static_cast<std::size_t>(cur) + 1]; ++k) {
      const Edge& e = pred_edges[static_cast<std::size_t>(k)];
      if (!done[static_cast<std::size_t>(e.pred)]) {
        taken = &e;
        break;
      }
    }
    RESCCL_CHECK(taken != nullptr);
    via.push_back(*taken);
    cur = taken->pred;
  }
  std::ostringstream os;
  constexpr std::size_t kMaxHops = 24;
  const std::size_t first = position[cur];
  os << node_name(path[first]);
  for (std::size_t i = first; i < path.size(); ++i) {
    if (i - first >= kMaxHops) {
      os << " -> ...";
      break;
    }
    const Edge& e = via[i];
    os << " -> "
       << (e.data_dep() ? WitnessDataDep()
                        : WitnessProgramOrder(program,
                                              static_cast<std::size_t>(e.tb)))
       << " " << node_name(i + 1 < path.size() ? path[i + 1] : cur);
  }
  Emit(report, rules::kDeadlock, "wait-for graph",
       os.str() + " — each node waits on the next; the chain closes on "
                  "itself");
}

// ---------------------------------------------------------------------------
// tb-merge: recompute every connection's active interval with the
// allocator's own timeline model (core/tb_alloc.cc, Eq. 7) — same schedule,
// same arithmetic, independent code path — and flag any TB whose merged
// streams have overlapping activity windows.
// ---------------------------------------------------------------------------

void CheckTbMerge(const CompiledCollective& plan, const Topology& topo,
                  AnalysisReport& report) {
  // The plan's dependency table carries the same edges the allocator's DAG
  // used, so the timeline replay reads plan.preds directly — no
  // DependencyGraph reconstruction on this hot path.
  ConnectionTable connections(topo);
  const TbAllocParams params;  // Compile() uses the defaults (policy aside)
  const int ntasks = plan.algo.ntasks();
  const int window = std::max(1, params.window_microbatches);

  // Static FIFO replay of the pipeline, identical to AnalyzeTimeline: every
  // invocation starts when its endpoints free up, its previous invocation
  // drains, and its same-micro-batch dependencies complete.
  std::vector<double> task_begin(static_cast<std::size_t>(ntasks), 0.0);
  std::vector<double> task_end(static_cast<std::size_t>(ntasks), 0.0);
  // Flat (rank, rank, dir) table — the whole rank grid fits in a few KiB,
  // so no hashing on the replay's hot path. Same for per-pair durations.
  const auto nranks = static_cast<std::size_t>(plan.algo.nranks);
  std::vector<double> endpoint_free(nranks * nranks * 2, 0.0);
  const auto endpoint_key = [nranks](Rank a, Rank b, int dir) {
    return (static_cast<std::size_t>(a) * nranks +
            static_cast<std::size_t>(b)) *
               2 +
           static_cast<std::size_t>(dir);
  };
  std::vector<double> dur_of(nranks * nranks, -1.0);
  std::vector<double> inv_end(static_cast<std::size_t>(ntasks) *
                              static_cast<std::size_t>(window));
  for (const auto& wave : plan.schedule.sub_pipelines) {
    for (TaskId t : wave) {
      const Transfer& tr =
          plan.algo.transfers[static_cast<std::size_t>(t.value)];
      double& dur = dur_of[static_cast<std::size_t>(tr.src) * nranks +
                           static_cast<std::size_t>(tr.dst)];
      if (dur < 0) {
        const Path& path =
            connections.path(connections.Resolve(tr.src, tr.dst));
        dur = path.latency.us() +
              static_cast<double>(params.chunk.bytes()) /
                  path.bottleneck.bytes_per_us();
      }
      double& send_free = endpoint_free[endpoint_key(tr.src, tr.dst, 0)];
      double& recv_free = endpoint_free[endpoint_key(tr.dst, tr.src, 1)];
      double prev_inv_end = 0.0;
      for (int m = 0; m < window; ++m) {
        double begin = std::max({send_free, recv_free, prev_inv_end});
        for (int pred : plan.preds[static_cast<std::size_t>(t.value)]) {
          begin = std::max(begin,
                           inv_end[static_cast<std::size_t>(pred) *
                                       static_cast<std::size_t>(window) +
                                   static_cast<std::size_t>(m)]);
        }
        const double end = begin + dur;
        inv_end[static_cast<std::size_t>(t.value) *
                    static_cast<std::size_t>(window) +
                static_cast<std::size_t>(m)] = end;
        if (m == 0) task_begin[static_cast<std::size_t>(t.value)] = begin;
        task_end[static_cast<std::size_t>(t.value)] = end;
        prev_inv_end = end;
        send_free = end;
        recv_free = end;
      }
    }
  }

  int emitted = 0;
  for (std::size_t i = 0; i < plan.tbs.tbs.size(); ++i) {
    const TbPlan::Tb& tb = plan.tbs.tbs[i];
    // Regroup the TB's refs into the streams the allocator merged: one per
    // (peer, direction, stage) endpoint. A TB holds a handful of refs, so a
    // linear scan beats a map; descriptions are formatted only on a hit.
    struct Window {
      double begin = 0;
      double end = 0;
      Rank peer = kInvalidRank;
      int dir = 0;  // 0 = send, 1 = recv
      int stage = 0;
    };
    std::vector<Window> streams;
    for (const TbTaskRef& ref : tb.refs) {
      const auto task = static_cast<std::size_t>(ref.task.value);
      const Transfer& tr = plan.algo.transfers[task];
      const Rank peer = ref.dir == Direction::kSend ? tr.dst : tr.src;
      const int dir = ref.dir == Direction::kSend ? 0 : 1;
      const int stage = plan.stage_of_task[task];
      Window* w = nullptr;
      for (Window& s : streams) {
        if (s.peer == peer && s.dir == dir && s.stage == stage) {
          w = &s;
          break;
        }
      }
      if (w == nullptr) {
        streams.push_back(
            {task_begin[task], task_end[task], peer, dir, stage});
      } else {
        w->begin = std::min(w->begin, task_begin[task]);
        w->end = std::max(w->end, task_end[task]);
      }
    }
    if (streams.size() < 2) continue;
    std::vector<Window> sorted = streams;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Window& a, const Window& b) {
                       return a.begin < b.begin;
                     });
    const auto stream_desc = [&tb](const Window& w) {
      std::ostringstream os;
      os << (w.dir == 0 ? "send r" : "recv r")
         << (w.dir == 0 ? tb.rank : w.peer) << "->r"
         << (w.dir == 0 ? w.peer : tb.rank) << " (stage " << w.stage << ")";
      return os.str();
    };
    // With windows sorted by begin, the allocator's strict-overlap predicate
    // (Eq. 7: max(b1,b2) < min(e1,e2)) reduces to "the next stream begins
    // before the furthest end seen so far".
    double max_end = sorted.front().end;
    const Window* max_holder = &sorted.front();
    for (std::size_t k = 1; k < sorted.size(); ++k) {
      const Window& w = sorted[k];
      if (w.begin < max_end && w.begin < w.end) {
        if (emitted++ < kMaxDiagsPerRule) {
          std::ostringstream os;
          os.precision(3);
          os << std::fixed << "tb#" << i << " (r" << tb.rank
             << ") merges stream " << stream_desc(*max_holder) << " active ["
             << max_holder->begin << ", " << max_holder->end
             << ")us with stream " << stream_desc(w) << " active [" << w.begin
             << ", " << w.end
             << ")us — state-based allocation requires disjoint activity "
                "windows (Eq. 7)";
          Emit(report, rules::kTbMerge, "tb#" + std::to_string(i), os.str());
        }
        break;  // one diagnostic per TB is enough
      }
      if (w.end > max_end) {
        max_end = w.end;
        max_holder = &sorted[k];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// channel-capacity: the per-(rank, peer) connection-channel pool
// (TopologySpec::channels_per_peer) must hold every stream the plan opens on
// one (rank, peer, direction) — stage-level execution opens one per stage.
// Compile() validates the configuration and AllocateTbs refuses violating
// plans it builds itself; this rule is the independent check for plans that
// arrive via plan_io.
// ---------------------------------------------------------------------------

void CheckChannelCapacity(const CompiledCollective& plan, const Topology& topo,
                          AnalysisReport& report) {
  const int pool = topo.spec().channels_per_peer;
  // Distinct (rank, peer, dir, stage) endpoints, grouped per (rank, peer,
  // dir). std::map keeps diagnostic order deterministic.
  std::map<std::tuple<Rank, Rank, int>, std::set<int>> stages;
  for (const TbPlan::Tb& tb : plan.tbs.tbs) {
    for (const TbTaskRef& ref : tb.refs) {
      const auto task = static_cast<std::size_t>(ref.task.value);
      const Transfer& tr = plan.algo.transfers[task];
      const Rank peer = ref.dir == Direction::kSend ? tr.dst : tr.src;
      const int dir = ref.dir == Direction::kSend ? 0 : 1;
      stages[{tb.rank, peer, dir}].insert(plan.stage_of_task[task]);
    }
  }
  int emitted = 0;
  for (const auto& [key, stage_set] : stages) {
    if (static_cast<int>(stage_set.size()) <= pool) continue;
    if (emitted++ >= kMaxDiagsPerRule) break;
    const auto& [rank, peer, dir] = key;
    std::ostringstream os;
    os << (dir == 0 ? "send r" : "recv r") << (dir == 0 ? rank : peer)
       << "->r" << (dir == 0 ? peer : rank) << " opens " << stage_set.size()
       << " streams (one per stage) but the per-peer channel pool holds "
          "only "
       << pool;
    Emit(report, rules::kChannelCapacity, "r" + std::to_string(rank),
         os.str());
  }
}

// Everything after the structure pass, shared by both AnalyzePlan overloads.
// `lowered` may be null when the plan is not lowerable — the lowered-program
// checks are skipped and the static passes still run.
void RunPlanChecks(const CompiledCollective& plan,
                   const LoweredProgram* lowered, const Topology* topo,
                   const StructureVerdict& v, AnalysisReport& report) {
  if (v.algo_ok && v.preds_ok) CheckHazards(plan, report);
  if (v.algo_ok) CheckPostcondition(plan, report);
  if (lowered != nullptr && v.algo_ok &&
      CheckLoweredStructure(plan, lowered->program, report)) {
    CheckRendezvous(lowered->program, report);
    CheckDeadlock(lowered->program, report);
  }
  if (topo != nullptr && v.algo_ok && v.schedule_ok && v.tbs_ok) {
    CheckTbMerge(plan, *topo, report);
    report.tb_merge_checked = true;
    CheckChannelCapacity(plan, *topo, report);
  }
}

}  // namespace

int AnalysisReport::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) ++n;
  }
  return n;
}

int AnalysisReport::warnings() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kWarning) ++n;
  }
  return n;
}

int AnalysisReport::advice() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kAdvice) ++n;
  }
  return n;
}

std::string AnalysisReport::Summary() const {
  if (clean()) {
    std::string s = "clean";
    if (!tb_merge_checked) s += " (tb-merge skipped: no topology)";
    return s;
  }
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) {
      first = &d;
      break;
    }
  }
  std::string s = std::to_string(errors()) + " error(s); first: [" +
                  first->rule_id + "] " + first->location + ": " +
                  first->witness;
  constexpr std::size_t kMaxLen = 240;
  if (s.size() > kMaxLen) {
    s.resize(kMaxLen - 3);
    s += "...";
  }
  return s;
}

AnalysisReport AnalyzePlan(const CompiledCollective& plan,
                           const LoweredProgram& lowered,
                           const Topology* topo) {
  const auto t0 = std::chrono::steady_clock::now();
  AnalysisReport report;
  const StructureVerdict v = CheckStructure(plan, topo, report);
  RunPlanChecks(plan, &lowered, topo, v, report);
  report.analysis_us = ElapsedUs(t0);
  return report;
}

AnalysisReport AnalyzePlan(const CompiledCollective& plan,
                           const Topology* topo) {
  const auto t0 = std::chrono::steady_clock::now();
  AnalysisReport report;
  const StructureVerdict v = CheckStructure(plan, topo, report);
  if (!v.lowerable()) {
    // A plan whose shape would trip Lower()'s internal invariants gets its
    // diagnostics from the static passes alone.
    RunPlanChecks(plan, nullptr, topo, v, report);
    report.analysis_us = ElapsedUs(t0);
    return report;
  }
  // Canonical launch: two micro-batches are enough to exercise every
  // cross-micro-batch interleaving shape the lowering can produce.
  const CostModel cost;
  LaunchConfig launch;
  launch.chunk = Size::KiB(1);
  launch.buffer = Size::KiB(2 * std::max(1, plan.algo.nchunks));
  const LoweredProgram lowered = Lower(plan, cost, launch);
  RunPlanChecks(plan, &lowered, topo, v, report);
  report.analysis_us = ElapsedUs(t0);
  return report;
}

std::string AnalysisReportToJson(const AnalysisReport& report) {
  std::ostringstream os;
  os << "{\"clean\":" << (report.clean() ? "true" : "false")
     << ",\"errors\":" << report.errors()
     << ",\"warnings\":" << report.warnings()
     << ",\"advice\":" << report.advice() << ",\"analysis_us\":"
     << obs::FormatDouble(report.analysis_us) << ",\"tb_merge_checked\":"
     << (report.tb_merge_checked ? "true" : "false") << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"severity\":\"" << DiagSeverityName(d.severity)
       << "\",\"rule\":\"" << obs::EscapeJson(d.rule_id)
       << "\",\"location\":\"" << obs::EscapeJson(d.location)
       << "\",\"witness\":\"" << obs::EscapeJson(d.witness) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace resccl
