// Performance lint: a purely static cost walk over a compiled plan.
//
// The PR 3 verifier answers "is this plan safe?"; these rules answer "is it
// leaving performance on the table?" with zero simulation: the lowered
// transfer declarations are walked once, every declaration's wire bytes are
// charged to each resource on its route, and the per-resource totals are
// compared against each other and against the optimality bound
// (analysis/bounds.h). Findings reuse the verifier's witness-carrying
// Diagnostic vocabulary at the advisory severity (DiagSeverity::kAdvice):
// they never fail strict verification and never flip `resccl lint`'s exit
// code unless --strict-perf asks for it.
//
//   perf-idle-link         links of a kind that sibling transfers do use
//                          carry zero bytes (unused fabric ports, undriven
//                          NICs excluded) — capacity bought but not spent.
//   perf-rail-imbalance    NIC load concentrates on a subset of the driven
//                          rails (max/mean above threshold) — the fan-in
//                          hot-spot signature of rail-oblivious plans.
//   perf-pipeline-starved  the launch yields too few micro-batches to hide
//                          pipeline bubbles even though a smaller chunk
//                          would create more.
//   perf-bound-gap         the plan's statically implied cost (max resource
//                          load / capacity) is at least `bound_gap_factor`
//                          times the provable lower bound.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/bounds.h"
#include "core/compiler.h"
#include "runtime/lowering.h"
#include "sim/cost_model.h"
#include "topology/topology.h"

namespace resccl {

namespace rules {
inline constexpr const char* kPerfIdleLink = "perf-idle-link";
inline constexpr const char* kPerfRailImbalance = "perf-rail-imbalance";
inline constexpr const char* kPerfPipelineStarved = "perf-pipeline-starved";
inline constexpr const char* kPerfBoundGap = "perf-bound-gap";
}  // namespace rules

struct PerfOptions {
  LaunchConfig launch;  // geometry the plan is judged at
  CostModel cost;
  double bound_gap_factor = 2.0;      // advise at cost ≥ k × bound
  double rail_imbalance_factor = 1.5; // advise at max/mean NIC load above
  int min_microbatches = 4;           // advise below this when fixable
};

struct PerfReport {
  std::vector<Diagnostic> diagnostics;  // every entry is kAdvice
  // Statically implied wire bytes per topology resource, indexed by
  // ResourceId (parallel to Topology::resources()).
  std::vector<double> load_bytes;
  // The plan's own static floor: the most loaded resource's load divided
  // by its capacity. Any simulation of the plan takes at least this long.
  double static_floor_us = 0;
  BoundReport bound;
  // bound / max(static floor, bound): how close the plan could possibly
  // get to optimal, judged statically.
  double optimality_pct = 0;
  double analysis_us = 0;
  // False when the plan's rank count does not match the topology — the
  // walk is skipped and no diagnostics are produced.
  bool applicable = true;

  // "floor 120.0us vs bound 96.0us (80% of optimal), 2 advice".
  [[nodiscard]] std::string Summary() const;
};

// Walks `lowered` (the program the runtime would execute) against `topo`.
[[nodiscard]] PerfReport AnalyzePlanPerf(const CompiledCollective& plan,
                                         const LoweredProgram& lowered,
                                         const Topology& topo,
                                         const PerfOptions& opts = {});

// Convenience: lowers `plan` with opts.launch first.
[[nodiscard]] PerfReport AnalyzePlanPerf(const CompiledCollective& plan,
                                         const Topology& topo,
                                         const PerfOptions& opts = {});

// Stable JSON rendering (embedded by `resccl lint --perf --json`).
[[nodiscard]] std::string PerfReportToJson(const PerfReport& report);

}  // namespace resccl
