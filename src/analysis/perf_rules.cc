#include "analysis/perf_rules.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace resccl {
namespace {

[[nodiscard]] const char* KindName(ResourceKind k) {
  switch (k) {
    case ResourceKind::kFabric: return "fabric";
    case ResourceKind::kPcie: return "pcie";
    case ResourceKind::kNic: return "nic";
    case ResourceKind::kTrunk: return "trunk";
    case ResourceKind::kSpine: return "spine";
  }
  return "?";
}

[[nodiscard]] double ToMiB(double bytes) { return bytes / (1024.0 * 1024.0); }

[[nodiscard]] std::string Mi(double bytes) {
  std::ostringstream os;
  os.precision(3);
  os << ToMiB(bytes) << " MiB";
  return os.str();
}

void Advise(PerfReport& report, const char* rule, std::string location,
            std::string witness) {
  report.diagnostics.push_back({DiagSeverity::kAdvice, rule,
                                std::move(location), std::move(witness)});
}

}  // namespace

PerfReport AnalyzePlanPerf(const CompiledCollective& plan,
                           const LoweredProgram& lowered,
                           const Topology& topo, const PerfOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  PerfReport report;
  const int n = topo.nranks();
  if (plan.algo.nranks != n) {
    report.applicable = false;
    return report;
  }

  // --- Charge every declaration's wire bytes to its route. ---
  const auto& resources = topo.resources();
  report.load_bytes.assign(resources.size(), 0.0);
  for (const SimTransferDecl& decl : lowered.program.transfers) {
    if (decl.src < 0 || decl.src >= n || decl.dst < 0 || decl.dst >= n ||
        decl.src == decl.dst) {
      continue;
    }
    const Path& path = topo.PathBetween(decl.src, decl.dst);
    for (const ResourceId res : path.resources) {
      report.load_bytes[static_cast<std::size_t>(res.value)] +=
          static_cast<double>(decl.bytes);
    }
  }

  // --- The plan's static floor: its most loaded resource. ---
  std::size_t hottest = 0;
  for (std::size_t i = 0; i < resources.size(); ++i) {
    const double cap = resources[i].capacity.bytes_per_us();
    if (cap <= 0 || report.load_bytes[i] <= 0) continue;
    const double t = report.load_bytes[i] / cap;
    if (t > report.static_floor_us) {
      report.static_floor_us = t;
      hottest = i;
    }
  }

  report.bound = ComputeLowerBound(topo, opts.cost, plan.algo, opts.launch);
  const double floor =
      std::max(report.static_floor_us, report.bound.combined.us());
  report.optimality_pct =
      floor > 0 ? report.bound.combined.us() / floor * 100.0 : 100.0;

  // The rails this topology's GPUs actually drive; NICs outside the set
  // are structurally idle and not the plan's fault.
  std::set<int> driven;
  for (Rank r = 0; r < std::min(n, topo.gpus_per_node()); ++r) {
    driven.insert(topo.RailOf(r));
  }
  const auto counted = [&](std::size_t i) {
    return resources[i].kind != ResourceKind::kNic ||
           driven.count(topo.RailOfResource(
               ResourceId(static_cast<std::int32_t>(i)))) > 0;
  };

  // --- perf-idle-link: per resource kind, links peers of the same kind do
  // use but this plan leaves at zero bytes. ---
  for (const ResourceKind kind :
       {ResourceKind::kFabric, ResourceKind::kPcie, ResourceKind::kNic,
        ResourceKind::kTrunk, ResourceKind::kSpine}) {
    int carriers = 0;
    int idle = 0;
    double carried = 0;
    std::size_t first_idle = resources.size();
    for (std::size_t i = 0; i < resources.size(); ++i) {
      if (resources[i].kind != kind || !counted(i)) continue;
      if (report.load_bytes[i] > 0) {
        ++carriers;
        carried += report.load_bytes[i];
      } else {
        ++idle;
        if (first_idle == resources.size()) first_idle = i;
      }
    }
    if (carriers == 0 || idle == 0) continue;
    std::ostringstream os;
    os << idle << " of " << (carriers + idle) << " " << KindName(kind)
       << " links carry zero bytes while the other " << carriers
       << " average " << Mi(carried / carriers);
    Advise(report, rules::kPerfIdleLink, resources[first_idle].name,
           os.str());
  }

  // --- perf-rail-imbalance: NIC bytes concentrated on few rails. ---
  if (driven.size() > 1) {
    std::vector<double> rail_bytes(driven.size(), 0.0);
    std::vector<int> rail_ids(driven.begin(), driven.end());
    double total = 0;
    for (std::size_t i = 0; i < resources.size(); ++i) {
      if (resources[i].kind != ResourceKind::kNic) continue;
      const int rail =
          topo.RailOfResource(ResourceId(static_cast<std::int32_t>(i)));
      const auto it = std::find(rail_ids.begin(), rail_ids.end(), rail);
      if (it == rail_ids.end()) continue;
      const auto slot = static_cast<std::size_t>(it - rail_ids.begin());
      rail_bytes[slot] += report.load_bytes[i];
      total += report.load_bytes[i];
    }
    if (total > 0) {
      const double mean = total / static_cast<double>(rail_bytes.size());
      const double peak =
          *std::max_element(rail_bytes.begin(), rail_bytes.end());
      if (peak > opts.rail_imbalance_factor * mean) {
        std::ostringstream os;
        os.precision(3);
        os << "NIC load max/mean = " << peak / mean << " across "
           << rail_bytes.size() << " rails:";
        for (std::size_t i = 0; i < rail_bytes.size(); ++i) {
          os << " rail" << rail_ids[i] << "=" << Mi(rail_bytes[i]);
        }
        Advise(report, rules::kPerfRailImbalance, "nic", os.str());
      }
    }
  }

  // --- perf-pipeline-starved: too few micro-batches to mask bubbles when
  // a smaller chunk would create more. ---
  if (lowered.nmicrobatches < opts.min_microbatches &&
      opts.launch.chunk.bytes() >= 2) {
    LaunchConfig halved = opts.launch;
    halved.chunk = Size::Bytes(opts.launch.chunk.bytes() / 2);
    const int more = halved.MicroBatches(plan.algo.nchunks);
    if (more > lowered.nmicrobatches) {
      std::ostringstream os;
      os << "launch yields " << lowered.nmicrobatches
         << " micro-batch(es); halving the " << opts.launch.chunk.bytes()
         << "-byte chunk would yield " << more
         << " and deepen the pipeline (§4.5)";
      Advise(report, rules::kPerfPipelineStarved, "launch", os.str());
    }
  }

  // --- perf-bound-gap: statically implied cost far above the bound. ---
  if (report.bound.combined > SimTime::Zero() &&
      report.static_floor_us >=
          opts.bound_gap_factor * report.bound.combined.us()) {
    std::ostringstream os;
    os.precision(4);
    os << "statically implied cost " << report.static_floor_us << "us is "
       << report.static_floor_us / report.bound.combined.us()
       << "x the lower bound " << report.bound.combined.us() << "us ("
       << report.bound.binding_cut << ")";
    Advise(report, rules::kPerfBoundGap, resources[hottest].name, os.str());
  }

  const auto t1 = std::chrono::steady_clock::now();
  report.analysis_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  return report;
}

PerfReport AnalyzePlanPerf(const CompiledCollective& plan,
                           const Topology& topo, const PerfOptions& opts) {
  if (plan.algo.nranks != topo.nranks()) {
    PerfReport report;
    report.applicable = false;
    return report;
  }
  // Lowering refuses kAuto (it is a launch-time request, not a protocol),
  // so resolve it here the same way the runtime does before lowering.
  LaunchConfig launch = opts.launch;
  launch.protocol =
      ResolveProtocol(topo, opts.cost, launch, plan.algo.nchunks);
  const LoweredProgram lowered =
      Lower(plan, opts.cost, launch, topo.spec().channels_per_peer);
  PerfOptions resolved = opts;
  resolved.launch = launch;
  return AnalyzePlanPerf(plan, lowered, topo, resolved);
}

std::string PerfReport::Summary() const {
  if (!applicable) return "not applicable (rank-count mismatch)";
  std::ostringstream os;
  os.precision(4);
  os << "floor " << static_floor_us << "us vs bound " << bound.combined.us()
     << "us (" << optimality_pct << "% of optimal), "
     << diagnostics.size() << " advice";
  return os.str();
}

std::string PerfReportToJson(const PerfReport& report) {
  std::ostringstream os;
  os << "{\"applicable\":" << (report.applicable ? "true" : "false")
     << ",\"static_floor_us\":" << obs::FormatDouble(report.static_floor_us)
     << ",\"optimality_pct\":" << obs::FormatDouble(report.optimality_pct)
     << ",\"advice\":" << report.diagnostics.size()
     << ",\"analysis_us\":" << obs::FormatDouble(report.analysis_us)
     << ",\"bound\":" << BoundReportToJson(report.bound) << "}";
  return os.str();
}

}  // namespace resccl
