#include "analysis/bounds.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace resccl {
namespace {

// Bytes that must leave (`out`) and enter (`in`) a proper subset of ranks.
struct GroupDemand {
  double out = 0;
  double in = 0;
};

// Entropy/counting demands for a rank group. `origins` counts the chunk
// classes whose origin/home rank lies inside the group (classes beyond the
// rank count have no postcondition and contribute nothing), `class_bytes`
// is the payload one chunk class moves across the whole launch, and
// `total_bytes` the rank's full effective buffer.
//
//   AllGather      every origin class inside must reach the outside; every
//                  origin class outside must come in.
//   ReduceScatter  the group's *combined* partial for each outside-homed
//                  class must leave (one class worth of bytes suffices, so
//                  this is the floor); each inside home needs the outside's
//                  combined partial.
//   AllReduce      the result everywhere depends on the group's combined
//                  contribution (full buffer out) and on the outside's
//                  (full buffer in) — conditional-entropy argument: given
//                  everything the other side knows, the result determines
//                  the group's combined contribution exactly.
//   Broadcast      the root's buffer must leave its side once and reach
//                  every rank on the other side.
//   Reduce         the mirror image.
[[nodiscard]] GroupDemand DemandFor(CollectiveOp op, int total_origins,
                                    int origins, bool has_root,
                                    double class_bytes, double total_bytes) {
  GroupDemand d;
  switch (op) {
    case CollectiveOp::kAllGather:
      d.out = class_bytes * origins;
      d.in = class_bytes * (total_origins - origins);
      break;
    case CollectiveOp::kReduceScatter:
      d.out = class_bytes * (total_origins - origins);
      d.in = class_bytes * origins;
      break;
    case CollectiveOp::kAllReduce:
      d.out = total_bytes;
      d.in = total_bytes;
      break;
    case CollectiveOp::kBroadcast:
      d.out = has_root ? total_bytes : 0;
      d.in = has_root ? 0 : total_bytes;
      break;
    case CollectiveOp::kReduce:
      d.out = has_root ? 0 : total_bytes;
      d.in = has_root ? total_bytes : 0;
      break;
  }
  return d;
}

// Counting bound on total payload injected anywhere in the fabric. For
// AllReduce each chunk class needs n−1 combining transmissions (n
// contributions merge into one value) plus n−1 disseminating receptions of
// the finished value — 2(n−1) class-bytes per class, which against the
// aggregate injection capacity n·B yields the textbook 2(n−1)/n · S/B.
[[nodiscard]] double AggregateDemand(CollectiveOp op, int nranks,
                                     int total_origins, int nchunks,
                                     double class_bytes) {
  const double nm1 = static_cast<double>(nranks - 1);
  switch (op) {
    case CollectiveOp::kAllGather:
    case CollectiveOp::kReduceScatter:
      return nm1 * static_cast<double>(total_origins) * class_bytes;
    case CollectiveOp::kAllReduce:
      return 2.0 * nm1 * static_cast<double>(nchunks) * class_bytes;
    case CollectiveOp::kBroadcast:
    case CollectiveOp::kReduce:
      return nm1 * static_cast<double>(nchunks) * class_bytes;
  }
  return 0;
}

[[nodiscard]] SimTime CutTime(double demand_bytes, Bandwidth capacity) {
  if (demand_bytes <= 0) return SimTime::Zero();
  if (capacity.bytes_per_us() <= 0) return SimTime::Infinity();
  return SimTime::Us(demand_bytes / capacity.bytes_per_us());
}

void AddCut(std::vector<CutBound>& cuts, std::string name, double demand,
            Bandwidth capacity) {
  cuts.push_back(
      {std::move(name), demand, capacity, CutTime(demand, capacity)});
}

}  // namespace

BoundReport ComputeLowerBound(const Topology& topo, const CostModel& cost,
                              const BoundInput& input) {
  const TopologySpec& spec = topo.spec();
  const int n = topo.nranks();
  const int nchunks = input.nchunks > 0 ? input.nchunks : n;
  RESCCL_CHECK_MSG(input.root >= 0 && input.root < n,
                   "bound root " << input.root << " out of range");

  BoundReport report;
  report.protocol =
      ResolveProtocol(topo, cost, input.launch, input.nchunks);
  const ProtocolSpec& proto = cost.ProtocolFor(report.protocol);
  report.nmicrobatches = input.launch.MicroBatches(nchunks);
  // The launch floors the buffer to whole micro-batches (never below one),
  // so the payload a run actually moves can differ from the requested
  // buffer in either direction; the bound must be evaluated at what moves.
  report.effective_buffer =
      input.launch.chunk * nchunks * report.nmicrobatches;
  if (n <= 1) {
    report.binding_cut = "none";
    return report;
  }

  // --- Alpha: the widest boundary some contribution must cross pays at
  // least its one-hop startup latency, scaled by the protocol factor.
  // Every collective here has a required pair spanning the whole fabric
  // (for rooted ops: pods > 1 implies some rank sits in another pod than
  // the root, and likewise for racks and nodes).
  SimTime widest = spec.intra_latency;
  if (topo.nodes() > 1) widest = spec.inter_latency;
  if (topo.racks() > 1) widest = spec.inter_latency + spec.cross_rack_extra;
  if (topo.pods() > 1) {
    widest =
        spec.inter_latency + spec.cross_rack_extra + spec.cross_pod_extra;
  }
  // The boundary-crossing invocation also pays the protocol's per-slot flag
  // synchronization for its chunk's wire bytes (every invocation does; the
  // cheaper pipelined handshake only replaces the α term, not the slots).
  const auto wire_chunk = static_cast<std::int64_t>(
      static_cast<double>(input.launch.chunk.bytes()) * proto.wire_inflation);
  report.alpha = widest * proto.latency_factor +
                 cost.SlotSyncCost(report.protocol, wire_chunk);

  // --- Beta: max over cuts of demand / capacity, in *wire* bytes. The
  // protocol's flag words travel every link the payload does, so inflating
  // each demand keeps the cut argument exact — and the simulator charges
  // the same inflated bytes as flow bytes, so the bound stays a floor.
  // Built from the lowering's truncated per-chunk wire bytes (not the exact
  // real-number inflation) so the bound never counts a fraction of a byte
  // the simulator does not move.
  const double class_bytes =
      static_cast<double>(wire_chunk) * report.nmicrobatches;
  const double total_bytes = class_bytes * nchunks;
  const int total_origins = std::min(nchunks, n);
  const int g = topo.gpus_per_node();
  const auto origins_in = [&](Rank first, int count) {
    return std::clamp(total_origins - first, 0, count);
  };
  const auto demand = [&](Rank first, int count) {
    const bool has_root = input.root >= first && input.root < first + count;
    return DemandFor(input.op, total_origins, origins_in(first, count),
                     has_root, class_bytes, total_bytes);
  };
  // Emit one cut per (family, direction): the worst member of the family.
  const auto add_worst = [&](const char* family, const char* direction,
                             Bandwidth capacity, int groups,
                             auto&& group_demand) {
    double worst = 0;
    int worst_group = 0;
    for (int i = 0; i < groups; ++i) {
      const double d = group_demand(i);
      if (d > worst) {
        worst = d;
        worst_group = i;
      }
    }
    AddCut(report.cuts,
           std::string(family) + std::to_string(worst_group) + " " + direction,
           worst, capacity);
  };

  // Rank cuts. Intra-node transfers inject on the GPU's fabric egress,
  // inter-node ones on its PCIe egress (they bypass the fabric pool), so
  // the per-rank cut is the sum of the two pools — PCIe only exists as an
  // exit once there is a second node.
  const Bandwidth rank_cap =
      topo.nodes() > 1
          ? Bandwidth::GBps(spec.gpu_fabric.gbps() + spec.pcie.gbps())
          : spec.gpu_fabric;
  add_worst("rank", "egress", rank_cap, n,
            [&](int r) { return demand(r, 1).out; });
  add_worst("rank", "ingress", rank_cap, n,
            [&](int r) { return demand(r, 1).in; });

  if (topo.nodes() > 1) {
    // Node cuts: everything leaving a node rides its ranks' PCIe lanes and
    // then the node's driven rail NICs — whichever sum is thinner binds.
    const Bandwidth node_cap = std::min(
        spec.pcie * static_cast<double>(g),
        spec.nic * static_cast<double>(topo.num_rails()));
    add_worst("node", "nic egress", node_cap, topo.nodes(),
              [&](int v) { return demand(v * g, g).out; });
    add_worst("node", "nic ingress", node_cap, topo.nodes(),
              [&](int v) { return demand(v * g, g).in; });
  }

  // Rack cuts: inter-rack traffic traverses the source rack's ToR trunk,
  // already thinned by the spec's oversubscription ratio.
  if (topo.racks() > 1) {
    const Bandwidth trunk =
        spec.nic * (static_cast<double>(spec.nics_per_node *
                                        spec.nodes_per_rack) /
                    spec.oversubscription);
    const auto rack_span = [&](int t) {
      const int first_node = t * spec.nodes_per_rack;
      const int count =
          std::min(spec.nodes_per_rack, topo.nodes() - first_node) * g;
      return std::pair<Rank, int>{first_node * g, count};
    };
    add_worst("rack", "trunk egress", trunk, topo.racks(), [&](int t) {
      const auto [first, count] = rack_span(t);
      return demand(first, count).out;
    });
    add_worst("rack", "trunk ingress", trunk, topo.racks(), [&](int t) {
      const auto [first, count] = rack_span(t);
      return demand(first, count).in;
    });

    // Pod cuts: cross-pod traffic traverses the pod's spine links.
    if (topo.pods() > 1) {
      const Bandwidth spine =
          trunk * (static_cast<double>(spec.racks_per_pod) /
                   spec.oversubscription);
      const auto pod_span = [&](int p) {
        const int first_rack = p * spec.racks_per_pod;
        const int last_rack =
            std::min(first_rack + spec.racks_per_pod, topo.racks());
        const int first_node = first_rack * spec.nodes_per_rack;
        const int last_node =
            std::min(last_rack * spec.nodes_per_rack, topo.nodes());
        return std::pair<Rank, int>{first_node * g,
                                    (last_node - first_node) * g};
      };
      add_worst("pod", "spine egress", spine, topo.pods(), [&](int p) {
        const auto [first, count] = pod_span(p);
        return demand(first, count).out;
      });
      add_worst("pod", "spine ingress", spine, topo.pods(), [&](int p) {
        const auto [first, count] = pod_span(p);
        return demand(first, count).in;
      });
    }
  }

  // Aggregate injection: total payload that must be injected somewhere,
  // against the sum of every rank's egress pools.
  AddCut(report.cuts, "aggregate injection",
         AggregateDemand(input.op, n, total_origins, nchunks, class_bytes),
         rank_cap * static_cast<double>(n));

  std::stable_sort(report.cuts.begin(), report.cuts.end(),
                   [](const CutBound& a, const CutBound& b) {
                     return a.time > b.time;
                   });
  report.bandwidth = report.cuts.front().time;
  report.binding_cut = report.cuts.front().name;
  report.combined = std::max(report.alpha, report.bandwidth);
  return report;
}

BoundReport ComputeLowerBound(const Topology& topo, const CostModel& cost,
                              const Algorithm& algo,
                              const LaunchConfig& launch) {
  BoundInput input;
  input.op = algo.collective;
  input.launch = launch;
  input.nchunks = algo.nchunks;
  input.root = algo.root;
  return ComputeLowerBound(topo, cost, input);
}

double BoundReport::OptimalityPct(SimTime elapsed) const {
  if (elapsed <= SimTime::Zero()) return 0;
  return combined / elapsed * 100.0;
}

std::string BoundReport::Summary() const {
  std::ostringstream os;
  os.precision(6);
  os << "combined " << combined.us() << "us (alpha " << alpha.us()
     << "us, bandwidth " << bandwidth.us() << "us via " << binding_cut << ")";
  return os.str();
}

std::string BoundReportToJson(const BoundReport& report) {
  std::ostringstream os;
  os << "{\"alpha_us\":" << obs::FormatDouble(report.alpha.us())
     << ",\"bandwidth_us\":" << obs::FormatDouble(report.bandwidth.us())
     << ",\"combined_us\":" << obs::FormatDouble(report.combined.us())
     << ",\"effective_bytes\":" << report.effective_buffer.bytes()
     << ",\"nmicrobatches\":" << report.nmicrobatches << ",\"protocol\":\""
     << ProtocolName(report.protocol) << "\",\"binding_cut\":\""
     << obs::EscapeJson(report.binding_cut) << "\",\"cuts\":[";
  for (std::size_t i = 0; i < report.cuts.size(); ++i) {
    const CutBound& c = report.cuts[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << obs::EscapeJson(c.name)
       << "\",\"demand_bytes\":" << obs::FormatDouble(c.demand_bytes)
       << ",\"capacity_gbps\":" << obs::FormatDouble(c.capacity.gbps())
       << ",\"time_us\":" << obs::FormatDouble(c.time.us()) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace resccl
