// Shared JSON string/number formatting for every exporter in the repo.
//
// Two correctness pitfalls motivated pulling this out of trace.cc:
//   * strings were concatenated into JSON unescaped, so any name containing
//     a quote, backslash, or control character produced invalid output;
//   * doubles were streamed at the default 6-significant-digit ostream
//     precision, so trace timestamps lost sub-µs placement once simulated
//     time passed ~1 s (1e6 µs).
// Every JSON producer (Chrome trace, metrics snapshot, CLI output) routes
// strings through EscapeJson and numbers through FormatDouble.
#pragma once

#include <string>
#include <string_view>

namespace resccl::obs {

// Escapes `s` for embedding inside a JSON string literal per RFC 8259 §7:
// quote, backslash, and all control characters below 0x20 (common ones as
// two-character escapes, the rest as \u00XX). Bytes >= 0x20 pass through
// untouched, so UTF-8 payloads survive.
[[nodiscard]] std::string EscapeJson(std::string_view s);

// Formats `v` with max_digits10 significant digits, the minimum that makes
// every finite double round-trip bit-exactly through strtod. Non-finite
// values (not valid JSON) are clamped to 0.
[[nodiscard]] std::string FormatDouble(double v);

}  // namespace resccl::obs
