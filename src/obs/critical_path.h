// Critical-path analyzer: attributes a simulated makespan to resource
// buckets — the machine-checkable version of the paper's Fig. 12 / Table 1.
//
// The machine's per-TB accounting already tiles each TB's lifetime exactly:
// finish = overhead + sync + busy + fault_stall (event times are assigned,
// never re-derived, so the tiling is bit-exact). This analyzer goes two
// steps further using the attribution fields the machine records per
// transfer (TransferStats) and per barrier passage (BarrierWait):
//
//  1. Per-TB breakdown. Each transfer's in-flight span [start, complete]
//     decomposes into
//        α       = min(latency, span)                 startup handshake
//        bw      = min(wire_bytes / ideal_rate, span − α)
//                                                     unavoidable serialization
//                                                     at the solo rate
//        cont    = span − α − bw                      γ·L(z) sharing + fault
//                                                     capacity loss
//     where ideal_rate = min(injection cap, unfaulted path bottleneck).
//     The three terms tile the span by construction, so every TB's buckets
//     still sum to its finish — the property test asserts this across the
//     whole algorithm library.
//
//  2. Critical-chain walk. Starting from the critical TB at t = makespan,
//     walk backwards through that TB's segments; when a *sync* segment is
//     reached, jump to the peer that resolved the wait (the dependency
//     transfer that completed at that instant, the rendezvous partner that
//     arrived at that instant, or the last arriver at a barrier — all
//     matched by exact event-time equality) and continue on its timeline.
//     The chain tiles [0, makespan] with *work* segments of whoever the
//     run was actually waiting on, so its sync bucket is structurally ~0;
//     residual sync appears only when no blamer can be identified (then
//     chain_complete is false). Both views sum to the makespan within
//     1e-9 relative — asserted by AnalyzeCriticalPath itself.
//
// Works on any SimProgram/SimRunReport pair, including multi-job merges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "sim/machine.h"

namespace resccl::obs {

struct AttributionBuckets {
  SimTime alpha;        // startup latency (Eq. 1's α term)
  SimTime bandwidth;    // bytes / solo rate (Eq. 1's β term)
  SimTime contention;   // γ·L(z) sharing + fault capacity degradation
  SimTime sync;         // rendezvous / dependency / barrier waits
  SimTime overhead;     // primitive issue + interpreter decode
  SimTime fault_stall;  // injected straggler pauses

  [[nodiscard]] SimTime Total() const {
    return alpha + bandwidth + contention + sync + overhead + fault_stall;
  }
};

struct TbBreakdown {
  int tb = -1;
  Rank rank = kInvalidRank;
  SimTime finish;
  AttributionBuckets buckets;  // Total() == finish (1e-9 relative)
};

enum class StepKind : std::uint8_t { kInflight, kOverhead, kFaultStall, kSync };

// One hop of the critical chain, in walk (time-descending) order.
struct CriticalStep {
  int tb = -1;
  int transfer = -1;  // >= 0 for kInflight
  StepKind kind = StepKind::kSync;
  SimTime begin;
  SimTime end;
};

struct CriticalPathReport {
  SimTime makespan;
  int critical_tb = -1;

  // View 1: the critical TB's own buckets (its genuine sync included) —
  // what Fig. 12 plots for the slowest TB.
  AttributionBuckets critical_tb_buckets;

  // View 2: the critical chain's buckets — sync re-attributed to the work
  // of whoever resolved each wait.
  AttributionBuckets path_buckets;
  std::vector<CriticalStep> steps;
  // False if some wait's blamer could not be identified and the span was
  // attributed to sync instead (the bucket sums still hold).
  bool chain_complete = true;

  std::vector<TbBreakdown> tbs;  // one per TB, Fig. 12's full bar chart
};

// Throws (RESCCL_CHECK) if the report is inconsistent with the program —
// both must come from the same Run.
[[nodiscard]] CriticalPathReport AnalyzeCriticalPath(
    const SimProgram& program, const SimRunReport& report);

}  // namespace resccl::obs
