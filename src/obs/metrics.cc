#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace resccl::obs {

namespace {

// std::atomic<double>::fetch_add is C++20 but not universally lowered to
// hardware; a CAS loop is portable and the contention here (post-run
// publication) is negligible.
void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void MetricsRegistry::Counter::Add(double v) {
  if (!owner_->enabled()) return;
  AtomicAdd(value_, v);
}

void MetricsRegistry::Gauge::Set(double v) {
  if (!owner_->enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

MetricsRegistry::Histogram::Histogram(const MetricsRegistry* owner,
                                      std::vector<double> bounds)
    : owner_(owner), bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    RESCCL_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly ascending");
  }
}

void MetricsRegistry::Histogram::Observe(double v) {
  if (!owner_->enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(this)))
             .first;
  }
  return *it->second;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge(this)))
             .first;
  }
  return *it->second;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(
    std::string_view name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(this,
                                                           std::move(bounds))))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0.0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::ToJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
       << "\": " << FormatDouble(c->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
       << "\": " << FormatDouble(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
       << "\": {\"count\": " << h->count()
       << ", \"sum\": " << FormatDouble(h->sum()) << ", \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < h->bounds().size()) {
        os << FormatDouble(h->bounds()[i]);
      } else {
        os << "\"inf\"";
      }
      os << ", \"n\": " << h->bucket_count(i) << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: publication sites may run during static teardown of
  // callers, so the registry must never be destroyed. Starts disabled.
  static MetricsRegistry* const g = [] {
    auto* r = new MetricsRegistry();
    r->Enable(false);
    return r;
  }();
  return *g;
}

}  // namespace resccl::obs
