#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace resccl::obs {

namespace {

// Absolute-or-relative closeness for reconstructed time sums: the machine
// assigns event times (never re-derives them), so reconstruction error is
// pure floating-point reassociation — a handful of ulps per term.
bool ApproxEq(SimTime a, SimTime b) {
  const double diff = std::abs((a - b).us());
  return diff <= 1e-9 * std::max(1.0, std::abs(b.us()));
}

// The machine's own span vocabulary (sim/machine.h): one contiguous span of
// a TB's lifetime, zero-length spans not stored, the stored spans tiling
// [0, finish] exactly. When the run was observed the report carries these
// prebuilt (the machine emits them incrementally per event); BuildSegments
// below reconstructs the identical streams by replay for unobserved runs.
using Segment = SimRunReport::TimelineSegment;
using SegKind = SimRunReport::TimelineSegment::Kind;

// α / bandwidth / contention tiling of one transfer's in-flight prefix
// [start, upto] (upto <= complete). The full-span case is the per-TB view;
// the chain walk can enter a transfer mid-flight and takes a prefix, with
// the byte phase split pro-rata so partial tiles remain exact.
struct InflightSplit {
  SimTime alpha;
  SimTime bw;
  SimTime cont;
};

InflightSplit SplitSpan(const TransferStats& ts, SimTime upto) {
  InflightSplit out;
  const SimTime span = upto - ts.start;
  out.alpha = std::min(ts.latency, span);
  const SimTime d = span - out.alpha;

  const SimTime full = ts.complete - ts.start;
  const SimTime d_full = full - std::min(ts.latency, full);
  const double ideal_us = ts.ideal_rate > 0.0
                              ? static_cast<double>(ts.wire_bytes) /
                                    ts.ideal_rate
                              : d_full.us();
  const SimTime bw_full = std::min(SimTime::Us(ideal_us), d_full);
  if (upto == ts.complete || d_full <= SimTime::Zero()) {
    out.bw = bw_full;
  } else {
    out.bw = SimTime::Us(d.us() * (bw_full.us() / d_full.us()));
  }
  out.bw = std::min(out.bw, d);
  out.cont = d - out.bw;
  return out;
}

std::vector<std::vector<Segment>> BuildSegments(const SimProgram& program,
                                                const SimRunReport& report) {
  const std::size_t ntbs = program.tbs.size();
  std::vector<std::vector<Segment>> segments(ntbs);

  // Per-TB event records, each already in per-TB chronological order: a TB
  // is sequential, and both stalls and barrier waits are appended at
  // monotonically non-decreasing simulated times.
  std::vector<std::vector<const SimRunReport::StallSlice*>> stalls(ntbs);
  for (const SimRunReport::StallSlice& s : report.stalls) {
    stalls[static_cast<std::size_t>(s.tb)].push_back(&s);
  }
  std::vector<std::vector<const SimRunReport::BarrierWait*>> waits(ntbs);
  for (const SimRunReport::BarrierWait& w : report.barrier_waits) {
    waits[static_cast<std::size_t>(w.tb)].push_back(&w);
  }

  for (std::size_t tb = 0; tb < ntbs; ++tb) {
    std::vector<Segment>& out = segments[tb];
    const auto emit = [&out](SegKind kind, SimTime begin, SimTime end,
                             int transfer, int barrier, bool is_send) {
      RESCCL_CHECK_MSG(end >= begin, "segment runs backwards");
      if (end > begin) {
        out.push_back({kind, is_send, transfer, barrier, begin, end});
      }
    };

    SimTime cursor = SimTime::Zero();
    std::size_t stall_i = 0;
    std::size_t wait_i = 0;
    for (const SimInstr& instr : program.tbs[tb].program) {
      if (stall_i < stalls[tb].size() &&
          stalls[tb][stall_i]->start == cursor) {
        const SimRunReport::StallSlice& s = *stalls[tb][stall_i++];
        emit(SegKind::kStall, s.start, s.start + s.duration, -1, -1, false);
        cursor = s.start + s.duration;
      }
      if (instr.kind == SimInstr::Kind::kBarrier) {
        RESCCL_CHECK_MSG(wait_i < waits[tb].size(),
                         "report is missing a barrier wait record");
        const SimRunReport::BarrierWait& w = *waits[tb][wait_i++];
        RESCCL_CHECK_MSG(w.barrier == instr.barrier,
                         "barrier wait records out of order");
        emit(SegKind::kOverhead, cursor, w.park, -1, -1, false);
        emit(SegKind::kSync, w.park, w.release, -1, instr.barrier, false);
        cursor = w.release;
        continue;
      }
      const bool is_send = instr.kind == SimInstr::Kind::kSendSide;
      const auto tid = static_cast<std::size_t>(instr.transfer);
      const TransferStats& ts = report.transfers[tid];
      const SimTime arrival = is_send ? ts.send_arrival : ts.recv_arrival;
      emit(SegKind::kOverhead, cursor, arrival, instr.transfer, -1, is_send);
      emit(SegKind::kSync, arrival, ts.start, instr.transfer, -1, is_send);
      emit(SegKind::kInflight, ts.start, ts.complete, instr.transfer, -1,
           is_send);
      cursor = ts.complete;
    }
    RESCCL_CHECK_MSG(
        ApproxEq(cursor, report.tbs[tb].finish),
        "reconstructed timeline does not reach the TB's finish time");
  }
  return segments;
}

// The rightmost stored segment of `segs` containing `t` from the left
// (begin < t <= end), or nullptr.
const Segment* FindSegmentEndingAt(const std::vector<Segment>& segs,
                                   SimTime t) {
  const auto it = std::lower_bound(
      segs.begin(), segs.end(), t,
      [](const Segment& s, SimTime when) { return s.begin < when; });
  if (it == segs.begin()) return nullptr;
  const Segment& seg = *(it - 1);
  if (seg.end < t) return nullptr;
  return &seg;
}

// Identifies whose event resolved a sync segment ending at time `t`.
// Matching is by exact event-time equality — resolution events *assign*
// the times being compared, so the doubles are bit-identical.
int ResolveBlame(const SimProgram& program, const SimRunReport& report,
                 int tb, const Segment& seg, SimTime t) {
  if (seg.barrier >= 0) {
    // Blame the last arriver: its park time equals the release time.
    for (const SimRunReport::BarrierWait& w : report.barrier_waits) {
      if (w.barrier != seg.barrier || w.release != t) continue;
      if (w.park == w.release && w.tb != tb) return w.tb;
    }
    return -1;
  }
  const auto tid = static_cast<std::size_t>(seg.transfer);
  const TransferStats& ts = report.transfers[tid];
  // A data dependency that completed at the resolution instant: its
  // receiver's in-flight segment ends exactly at t, guaranteeing the walk
  // lands on work.
  for (const int dep : program.transfers[tid].deps) {
    const TransferStats& d = report.transfers[static_cast<std::size_t>(dep)];
    if (d.complete == t && d.recv_tb != tb) return d.recv_tb;
    if (d.complete == t && d.send_tb != tb) return d.send_tb;
  }
  // Otherwise the rendezvous partner arrived last.
  const SimTime peer_arrival = seg.is_send ? ts.recv_arrival : ts.send_arrival;
  const int peer = seg.is_send ? ts.recv_tb : ts.send_tb;
  if (peer_arrival == t && peer != tb) return peer;
  return -1;
}

}  // namespace

CriticalPathReport AnalyzeCriticalPath(const SimProgram& program,
                                       const SimRunReport& report) {
  RESCCL_CHECK_MSG(report.tbs.size() == program.tbs.size() &&
                       report.transfers.size() == program.transfers.size(),
                   "report does not match program");
  CriticalPathReport out;
  out.makespan = report.makespan;

  // --- View 1: per-TB buckets (Fig. 12's bars). --------------------------
  out.tbs.resize(program.tbs.size());
  for (std::size_t tb = 0; tb < program.tbs.size(); ++tb) {
    TbBreakdown& b = out.tbs[tb];
    b.tb = static_cast<int>(tb);
    b.rank = report.tbs[tb].rank;
    b.finish = report.tbs[tb].finish;
    b.buckets.overhead = report.tbs[tb].overhead;
    b.buckets.sync = report.tbs[tb].sync;
    b.buckets.fault_stall = report.tbs[tb].fault_stall;
  }
  for (const TransferStats& ts : report.transfers) {
    const InflightSplit split = SplitSpan(ts, ts.complete);
    for (const int side : {ts.send_tb, ts.recv_tb}) {
      AttributionBuckets& b = out.tbs[static_cast<std::size_t>(side)].buckets;
      b.alpha += split.alpha;
      b.bandwidth += split.bw;
      b.contention += split.cont;
    }
  }

  int critical = -1;
  for (std::size_t tb = 0; tb < out.tbs.size(); ++tb) {
    RESCCL_CHECK_MSG(ApproxEq(out.tbs[tb].buckets.Total(), out.tbs[tb].finish),
                     "TB attribution buckets do not sum to its finish time");
    if (critical < 0 ||
        out.tbs[tb].finish > out.tbs[static_cast<std::size_t>(critical)]
                                 .finish) {
      critical = static_cast<int>(tb);
    }
  }
  out.critical_tb = critical;
  if (critical >= 0) {
    out.critical_tb_buckets =
        out.tbs[static_cast<std::size_t>(critical)].buckets;
  }
  RESCCL_CHECK_MSG(ApproxEq(out.critical_tb_buckets.Total(), out.makespan),
                   "critical-TB buckets do not sum to the makespan");
  if (critical < 0) return out;  // empty program

  // --- View 2: critical-chain walk. --------------------------------------
  // Prefer the machine's incrementally recorded streams (observe mode):
  // same contract, no replay. Fall back to reconstruction when the run was
  // not observed (or the report predates segment recording).
  std::vector<std::vector<Segment>> built;
  const std::vector<std::vector<Segment>>* segments_p = nullptr;
  if (report.segments.size() == program.tbs.size()) {
    for (std::size_t tb = 0; tb < program.tbs.size(); ++tb) {
      const std::vector<Segment>& s = report.segments[tb];
      RESCCL_CHECK_MSG(
          ApproxEq(s.empty() ? SimTime::Zero() : s.back().end,
                   report.tbs[tb].finish),
          "recorded timeline does not reach the TB's finish time");
    }
    segments_p = &report.segments;
  } else {
    built = BuildSegments(program, report);
    segments_p = &built;
  }
  const std::vector<std::vector<Segment>>& segments = *segments_p;
  std::size_t total_segments = 0;
  for (const auto& s : segments) total_segments += s.size();

  int tb = critical;
  SimTime t = out.makespan;
  // The walk either consumes a span (bounded by total segments) or hops
  // blame at a fixed instant (bounded by same-instant event chains); the
  // cap only trips on pathological same-instant cycles, where the
  // remainder is attributed to sync so the sum invariant still holds.
  std::size_t budget = 4 * total_segments + 64;
  while (t > SimTime::Zero()) {
    const Segment* seg = budget-- > 0
                             ? FindSegmentEndingAt(
                                   segments[static_cast<std::size_t>(tb)], t)
                             : nullptr;
    if (seg == nullptr) {
      out.path_buckets.sync += t;
      out.steps.push_back(
          {tb, -1, StepKind::kSync, SimTime::Zero(), t});
      out.chain_complete = false;
      break;
    }
    if (seg->kind == SegKind::kSync && seg->end == t) {
      const int blamed = ResolveBlame(program, report, tb, *seg, t);
      if (blamed >= 0) {
        tb = blamed;  // same instant, new timeline
        continue;
      }
      out.path_buckets.sync += t - seg->begin;
      out.steps.push_back({tb, seg->transfer, StepKind::kSync, seg->begin, t});
      out.chain_complete = false;
      t = seg->begin;
      continue;
    }
    switch (seg->kind) {
      case SegKind::kOverhead:
        out.path_buckets.overhead += t - seg->begin;
        out.steps.push_back(
            {tb, seg->transfer, StepKind::kOverhead, seg->begin, t});
        break;
      case SegKind::kStall:
        out.path_buckets.fault_stall += t - seg->begin;
        out.steps.push_back(
            {tb, seg->transfer, StepKind::kFaultStall, seg->begin, t});
        break;
      case SegKind::kInflight: {
        const auto tid = static_cast<std::size_t>(seg->transfer);
        const InflightSplit split = SplitSpan(report.transfers[tid], t);
        out.path_buckets.alpha += split.alpha;
        out.path_buckets.bandwidth += split.bw;
        out.path_buckets.contention += split.cont;
        out.steps.push_back(
            {tb, seg->transfer, StepKind::kInflight, seg->begin, t});
        break;
      }
      case SegKind::kSync:
        // Entered mid-wait (end > t): the waiter cannot have caused an
        // event at t; treat the covered span as unattributed sync.
        out.path_buckets.sync += t - seg->begin;
        out.steps.push_back(
            {tb, seg->transfer, StepKind::kSync, seg->begin, t});
        out.chain_complete = false;
        break;
    }
    t = seg->begin;
  }

  RESCCL_CHECK_MSG(ApproxEq(out.path_buckets.Total(), out.makespan),
                   "critical-chain buckets do not sum to the makespan");
  return out;
}

}  // namespace resccl::obs
