// Publication of per-run reports into the metrics registry.
//
// The run path keeps its zero-overhead report structs (SimRunReport,
// CompileStats, FaultImpact, ...); after a run completes, these helpers
// fold the aggregates into stable metric names (docs/observability.md).
// Every helper early-outs on a disabled registry, so the default cost is
// one relaxed atomic load per run. Publication is side-effect-free with
// respect to simulation and compilation: nothing here feeds back into
// timing, results, or the compile fingerprint.
#pragma once

#include "analysis/bounds.h"
#include "analysis/perf_rules.h"
#include "obs/metrics.h"
#include "runtime/backend.h"
#include "runtime/multi_job.h"

namespace resccl::obs {

// One lower-bound computation, under stable analysis.bound.* names:
// evaluation count, the bound components, and the binding-cut family split.
void PublishBoundReport(MetricsRegistry& reg, const BoundReport& report);

// One performance-lint pass, under analysis.perf.*: pass count, advisory
// findings per rule, the static floor, and the optimality histogram.
void PublishPerfReport(MetricsRegistry& reg, const PerfReport& report);

// Folds one Execute's report into `reg`: run counters, makespan/algo-bw
// histograms, compile-phase times, fluid re-rate counters, per-TB time
// buckets, link utilization gauges, and fault impact (when faulted).
void PublishCollectiveReport(MetricsRegistry& reg,
                             const CollectiveReport& report);

// Folds one RunConcurrently outcome into `reg`: job counts, per-job co-run
// slowdown histogram, and plan-cache hit counters.
void PublishCoRun(MetricsRegistry& reg, const CoRunReport& report);

// Scheduling-service (src/service) telemetry under stable service.* names.
// These take plain scalars so obs stays independent of the service layer;
// the registered names are cataloged in docs/observability.md.

// One admission event: `decision` is "submitted" | "admitted" |
// "rejected" | "shed", `priority` the class name ("high" | "normal" |
// "low"). Feeds service.requests.<decision>; rejections and sheds also
// land in per-class counters (service.class.<p>.<decision>).
void PublishServiceDecision(MetricsRegistry& reg, std::string_view decision,
                            std::string_view priority);

// One completed (dispatched) request: served-vs-failed, the coalesce
// split (plan shared vs freshly compiled), the queue-wait histogram, and
// the per-tenant served-bytes counter the fairness bench reads.
void PublishServiceCompletion(MetricsRegistry& reg, std::string_view tenant,
                              bool failed, bool coalesced,
                              double queue_wait_us, double bytes);

// Live queue state after any transition (gauges).
void PublishServiceDepth(MetricsRegistry& reg, double queued,
                         double in_flight);

}  // namespace resccl::obs
