// Publication of per-run reports into the metrics registry.
//
// The run path keeps its zero-overhead report structs (SimRunReport,
// CompileStats, FaultImpact, ...); after a run completes, these helpers
// fold the aggregates into stable metric names (docs/observability.md).
// Every helper early-outs on a disabled registry, so the default cost is
// one relaxed atomic load per run. Publication is side-effect-free with
// respect to simulation and compilation: nothing here feeds back into
// timing, results, or the compile fingerprint.
#pragma once

#include "obs/metrics.h"
#include "runtime/backend.h"
#include "runtime/multi_job.h"

namespace resccl::obs {

// Folds one Execute's report into `reg`: run counters, makespan/algo-bw
// histograms, compile-phase times, fluid re-rate counters, per-TB time
// buckets, link utilization gauges, and fault impact (when faulted).
void PublishCollectiveReport(MetricsRegistry& reg,
                             const CollectiveReport& report);

// Folds one RunConcurrently outcome into `reg`: job counts, per-job co-run
// slowdown histogram, and plan-cache hit counters.
void PublishCoRun(MetricsRegistry& reg, const CoRunReport& report);

}  // namespace resccl::obs
