#include "obs/publish.h"

#include <string>
#include <vector>

namespace resccl::obs {

namespace {

// Exponential µs buckets covering everything from a one-chunk hop to a
// multi-second co-run.
std::vector<double> MakespanBoundsUs() {
  return {10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7};
}

std::vector<double> SlowdownBounds() {
  return {1.0, 1.1, 1.25, 1.5, 2.0, 4.0, 8.0};
}

std::vector<double> BandwidthBoundsGbps() {
  return {1.0, 10.0, 50.0, 100.0, 200.0, 400.0, 1000.0};
}

}  // namespace

void PublishCollectiveReport(MetricsRegistry& reg,
                             const CollectiveReport& report) {
  if (!reg.enabled()) return;

  reg.counter("run.count").Increment();
  reg.counter("run.sim_us").Add(report.sim.makespan.us());
  reg.histogram("run.makespan_us", MakespanBoundsUs())
      .Observe(report.sim.makespan.us());
  reg.histogram("run.algo_bw_gbps", BandwidthBoundsGbps())
      .Observe(report.algo_bw.gbps());
  reg.gauge("run.last_makespan_us").Set(report.sim.makespan.us());
  reg.gauge("run.last_algo_bw_gbps").Set(report.algo_bw.gbps());
  reg.counter("run.microbatches").Add(report.nmicrobatches);
  reg.counter("run.tbs").Add(report.total_tbs);

  // Per-protocol run counters ("sim.protocol.Simple", ...): which transport
  // protocol runs actually used, and how many of those choices were made by
  // the kAuto crossover model rather than the caller.
  reg.counter(std::string("sim.protocol.") + ProtocolName(report.protocol))
      .Increment();
  if (report.protocol_auto) {
    reg.counter("sim.protocol.auto_resolved").Increment();
  }

  reg.counter("compile.analysis_us").Add(report.compile.analysis_us);
  reg.counter("compile.scheduling_us").Add(report.compile.scheduling_us);
  reg.counter("compile.allocation_us").Add(report.compile.allocation_us);
  reg.counter("compile.lowering_us").Add(report.compile.lowering_us);
  reg.counter("compile.verify_us").Add(report.compile.verify_us);

  reg.counter("sim.events").Add(static_cast<double>(report.sim.events));
  // Queue mechanics (sim/event_queue.h): pops counts every heap pop —
  // fired events plus the stale entries lazy invalidation discards — so
  // pops - skipped_stale == sim.events for the run; peak_heap is the
  // high-water mark of resident entries (a gauge: last run, not a sum).
  const EventQueue::Stats& q = report.sim.queue;
  reg.counter("sim.events.popped").Add(static_cast<double>(q.popped));
  reg.counter("sim.events.skipped_stale")
      .Add(static_cast<double>(q.skipped_stale));
  reg.gauge("sim.events.peak_heap").Set(static_cast<double>(q.peak_heap));
  const FluidNetwork::Stats& fl = report.sim.fluid;
  reg.counter("sim.fluid.flows_started")
      .Add(static_cast<double>(fl.flows_started));
  reg.counter("sim.fluid.flows_recycled")
      .Add(static_cast<double>(fl.flows_recycled));
  reg.counter("sim.fluid.recompute_calls")
      .Add(static_cast<double>(fl.recompute_calls));
  reg.counter("sim.fluid.binding_skips")
      .Add(static_cast<double>(fl.binding_skips));
  reg.counter("sim.fluid.reschedules").Add(static_cast<double>(fl.reschedules));

  SimTime busy;
  SimTime sync;
  SimTime overhead;
  SimTime stall;
  for (const TbStats& tb : report.sim.tbs) {
    busy += tb.busy;
    sync += tb.sync;
    overhead += tb.overhead;
    stall += tb.fault_stall;
  }
  reg.counter("sim.tb.busy_us").Add(busy.us());
  reg.counter("sim.tb.sync_us").Add(sync.us());
  reg.counter("sim.tb.overhead_us").Add(overhead.us());
  reg.counter("sim.tb.fault_stall_us").Add(stall.us());

  reg.gauge("links.avg_busy_frac").Set(report.links.avg);
  reg.gauge("links.max_busy_frac").Set(report.links.max);
  reg.gauge("links.carriers").Set(report.links.carriers);
  // Per-rail NIC-link rows: near-equal values mean the transfer striping is
  // rail-aligned; a hot rail shows up as a high max over its siblings.
  for (const RailUtilization& rail : report.rails) {
    if (rail.carriers == 0) continue;  // rail idle this run (or unused NIC)
    const std::string prefix = "links.rail" + std::to_string(rail.rail);
    reg.counter(prefix + ".bytes").Add(static_cast<double>(rail.bytes));
    reg.gauge(prefix + ".avg_busy_frac").Set(rail.avg_busy_frac);
    reg.gauge(prefix + ".max_busy_frac").Set(rail.max_busy_frac);
  }

  if (report.fault.faulted) {
    reg.counter("fault.runs").Increment();
    reg.counter("fault.total_stall_us").Add(report.fault.total_stall.us());
    reg.histogram("fault.slowdown_vs_clean", SlowdownBounds())
        .Observe(report.fault.slowdown_vs_clean);
  }
}

void PublishCoRun(MetricsRegistry& reg, const CoRunReport& report) {
  if (!reg.enabled()) return;

  reg.counter("multi_job.runs").Increment();
  reg.counter("multi_job.jobs")
      .Add(static_cast<double>(report.jobs.size()));
  reg.gauge("multi_job.last_makespan_us").Set(report.makespan.us());
  for (const JobOutcome& job : report.jobs) {
    reg.histogram("multi_job.slowdown", SlowdownBounds())
        .Observe(job.slowdown);
    reg.counter(job.plan_cache_hit ? "plan_cache.hit_runs"
                                   : "plan_cache.miss_runs")
        .Increment();
  }
}

void PublishServiceDecision(MetricsRegistry& reg, std::string_view decision,
                            std::string_view priority) {
  if (!reg.enabled()) return;
  reg.counter(std::string("service.requests.") + std::string(decision))
      .Increment();
  // Drops are the per-class signal the load bench watches: shedding must
  // concentrate on the lowest class, so high/normal drop counters staying
  // at zero *is* the priority-ordering property.
  if (decision == "rejected" || decision == "shed") {
    reg.counter("service.class." + std::string(priority) + "." +
                std::string(decision))
        .Increment();
  }
}

void PublishServiceCompletion(MetricsRegistry& reg, std::string_view tenant,
                              bool failed, bool coalesced,
                              double queue_wait_us, double bytes) {
  if (!reg.enabled()) return;
  reg.counter(failed ? "service.requests.failed" : "service.requests.served")
      .Increment();
  reg.counter(coalesced ? "service.prepare.coalesced"
                        : "service.prepare.compiles")
      .Increment();
  // Same exponential µs grid as run.makespan_us: queue waits under load
  // range from sub-batch to multi-second.
  reg.histogram("service.queue.wait_us", MakespanBoundsUs())
      .Observe(queue_wait_us);
  if (!failed) {
    reg.counter("service.tenant." + std::string(tenant) + ".served_bytes")
        .Add(bytes);
  }
}

void PublishServiceDepth(MetricsRegistry& reg, double queued,
                         double in_flight) {
  if (!reg.enabled()) return;
  reg.gauge("service.queue.depth").Set(queued);
  reg.gauge("service.in_flight").Set(in_flight);
}

void PublishBoundReport(MetricsRegistry& reg, const BoundReport& report) {
  if (!reg.enabled()) return;
  reg.counter("analysis.bound.evaluations").Increment();
  reg.gauge("analysis.bound.last_alpha_us").Set(report.alpha.us());
  reg.gauge("analysis.bound.last_bandwidth_us").Set(report.bandwidth.us());
  reg.gauge("analysis.bound.last_combined_us").Set(report.combined.us());
  // The cut family that bound this evaluation ("rank", "node", "rack",
  // "pod", "aggregate", or "none"): the prefix before any index digits.
  std::string family;
  for (const char c : report.binding_cut) {
    if (c >= '0' && c <= '9') break;
    if (c == ' ') break;
    family += c;
  }
  reg.counter("analysis.bound.binding." + family).Increment();
}

void PublishPerfReport(MetricsRegistry& reg, const PerfReport& report) {
  if (!reg.enabled()) return;
  reg.counter("analysis.perf.passes").Increment();
  reg.counter("analysis.perf.advice")
      .Add(static_cast<double>(report.diagnostics.size()));
  for (const Diagnostic& d : report.diagnostics) {
    reg.counter("analysis.perf.rule." + d.rule_id).Increment();
  }
  reg.gauge("analysis.perf.last_static_floor_us").Set(report.static_floor_us);
  // Percent-of-optimal grid: how tight plans run against the bound.
  reg.histogram("analysis.perf.optimality_pct",
                {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0})
      .Observe(report.optimality_pct);
}

}  // namespace resccl::obs
