#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace resccl::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

}  // namespace resccl::obs
