// Per-resource link-utilization timelines.
//
// The fluid model's rates are piecewise constant between events, and the
// simulator (when observing) logs every aggregate-rate change per resource
// (FluidNetwork::RateDelta). Replaying those deltas by prefix sum yields
// each link's *exact* utilization timeline — no sampling, no binning. Two
// invariants tie the timelines back to the simulator's own accounting, and
// the property tests assert both across the algorithm library:
//
//   * integral:   ∫ rate(t) dt  ==  bytes carried (ResourceUsage::bytes),
//                 up to the sub-millibyte completion residue per flow;
//   * support:    time with rate > 0  ==  ResourceUsage::active.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "sim/machine.h"
#include "topology/topology.h"

namespace resccl::obs {

struct LinkTimeline {
  ResourceId resource{-1};
  std::string name;           // topology resource name
  Bandwidth capacity;         // unfaulted capacity, for utilization fractions
  std::int64_t bytes = 0;     // total carried (from the run's link_usage)
  SimTime active;             // total busy time (from the run's link_usage)

  // rate holds from t until the next sample's t (bytes/us); the last sample
  // always has rate 0.
  struct Sample {
    SimTime t;
    double rate = 0.0;
  };
  std::vector<Sample> samples;

  // ∫ rate dt in bytes over the whole timeline.
  [[nodiscard]] double IntegralBytes() const;
  // Total time with rate > 0.
  [[nodiscard]] SimTime BusyTime() const;
  // BusyTime / makespan (0 for an empty makespan).
  [[nodiscard]] double BusyFraction(SimTime makespan) const;
  // Peak aggregate rate over the timeline, bytes/us.
  [[nodiscard]] double PeakRate() const;
};

// One timeline per topology resource that carried data, in ResourceId
// order. Requires a report produced with SimMachine::set_observe(true)
// (link_rates recorded); returns an empty vector otherwise.
[[nodiscard]] std::vector<LinkTimeline> BuildLinkTimelines(
    const Topology& topo, const SimRunReport& report);

// Flat CSV: resource,name,t_us,rate_bytes_per_us — one row per sample,
// doubles formatted to round-trip.
[[nodiscard]] std::string TimelinesToCsv(
    const std::vector<LinkTimeline>& timelines);

}  // namespace resccl::obs
