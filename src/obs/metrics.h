// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// This is the unified home for the accounting the repo used to scatter
// across one-off structs (FluidNetwork::Stats, TbStats, CompileStats,
// FaultImpact). Those structs still exist — they are the zero-overhead
// per-run reports — but after every Execute their aggregates are published
// here under stable metric names (catalog: docs/observability.md), so
// long-running processes (sweeps, co-run servers, the CLI) accumulate one
// queryable view instead of N ad-hoc printfs.
//
// Cost model. Handles are registered once under a mutex and stay valid for
// the registry's lifetime; updates are lock-free atomics. When a registry
// is disabled every update short-circuits on one relaxed atomic load — and
// the publication sites additionally guard whole blocks with enabled(), so
// a disabled registry costs one load per Execute, not one per metric.
// Metrics never feed back into the simulator or the compile fingerprint
// (DESIGN.md): enabling observability cannot change any simulated result.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace resccl::obs {

class MetricsRegistry {
 public:
  // Monotonically increasing double (counts, accumulated microseconds).
  class Counter {
   public:
    void Add(double v);
    void Increment() { Add(1.0); }
    [[nodiscard]] double value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit Counter(const MetricsRegistry* owner) : owner_(owner) {}
    const MetricsRegistry* owner_;
    std::atomic<double> value_{0.0};
  };

  // Last-write-wins instantaneous value.
  class Gauge {
   public:
    void Set(double v);
    [[nodiscard]] double value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit Gauge(const MetricsRegistry* owner) : owner_(owner) {}
    const MetricsRegistry* owner_;
    std::atomic<double> value_{0.0};
  };

  // Fixed ascending upper-bound buckets plus an overflow bucket; also
  // tracks count and sum so means are recoverable.
  class Histogram {
   public:
    void Observe(double v);
    [[nodiscard]] std::uint64_t count() const {
      return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const {
      return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    // i in [0, bounds().size()]: the last index is the overflow bucket.
    [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
      return buckets_[i].load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    Histogram(const MetricsRegistry* owner, std::vector<double> bounds);
    const MetricsRegistry* owner_;
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Find-or-register. Returned references stay valid for the registry's
  // lifetime. For histogram, `bounds` must be strictly ascending; the first
  // registration wins and later bounds are ignored.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  // Zeroes every value; handles stay registered and valid.
  void Reset();

  // Snapshot as one JSON object:
  //   {"counters":{name:value,...},
  //    "gauges":{name:value,...},
  //    "histograms":{name:{"count":n,"sum":s,
  //                        "buckets":[{"le":b,"n":c},...,{"le":"inf","n":c}]}}}
  // Names are escaped and doubles formatted to round-trip (obs/json.h).
  [[nodiscard]] std::string ToJson() const;

  // Process-global registry. Starts *disabled*: default runs pay one atomic
  // load per Execute. `resccl profile` and the obs tests enable it.
  static MetricsRegistry& Global();

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace resccl::obs
