#include "obs/timeline.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace resccl::obs {

namespace {

// Aggregate rates are prefix sums of per-flow deltas; when all flows on a
// resource drain, the sum telescopes to zero up to fp cancellation noise.
// The noise scales with the magnitudes summed (rates run to ~1e5 bytes/us,
// so residues of ~1e-8 absolute are routine), hence the clamp threshold is
// relative to the largest aggregate the resource has reached: anything
// below 1e-9 of peak is "idle", so BusyTime matches the simulator's
// ResourceUsage::active instead of counting residue-polluted gaps as busy.
double ClampRate(double rate, double peak) {
  return std::abs(rate) < 1e-9 * std::max(1.0, peak) ? 0.0 : rate;
}

}  // namespace

double LinkTimeline::IntegralBytes() const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    total += samples[i].rate * (samples[i + 1].t - samples[i].t).us();
  }
  return total;
}

SimTime LinkTimeline::BusyTime() const {
  SimTime busy;
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    if (samples[i].rate > 0.0) busy += samples[i + 1].t - samples[i].t;
  }
  return busy;
}

double LinkTimeline::BusyFraction(SimTime makespan) const {
  return makespan > SimTime::Zero() ? BusyTime() / makespan : 0.0;
}

double LinkTimeline::PeakRate() const {
  double peak = 0.0;
  for (const Sample& s : samples) peak = std::max(peak, s.rate);
  return peak;
}

std::vector<LinkTimeline> BuildLinkTimelines(const Topology& topo,
                                             const SimRunReport& report) {
  std::vector<LinkTimeline> out;
  if (report.link_rates.empty()) return out;

  const std::size_t n = topo.resources().size();
  RESCCL_CHECK(report.link_usage.size() == n);
  std::vector<std::vector<LinkTimeline::Sample>> samples(n);
  std::vector<double> rate(n, 0.0);
  std::vector<double> peak(n, 0.0);
  // The log is globally time-ordered (simulated time is monotonic), so one
  // forward pass with same-timestamp coalescing reconstructs each
  // resource's piecewise-constant aggregate exactly.
  for (const FluidNetwork::RateDelta& d : report.link_rates) {
    const auto ri = static_cast<std::size_t>(d.resource.value);
    RESCCL_CHECK(ri < n);
    rate[ri] += d.delta;
    peak[ri] = std::max(peak[ri], std::abs(rate[ri]));
    std::vector<LinkTimeline::Sample>& s = samples[ri];
    if (!s.empty() && s.back().t == d.t) {
      s.back().rate = ClampRate(rate[ri], peak[ri]);
    } else {
      s.push_back({d.t, ClampRate(rate[ri], peak[ri])});
    }
  }

  for (std::size_t ri = 0; ri < n; ++ri) {
    if (samples[ri].empty() && report.link_usage[ri].bytes == 0) continue;
    LinkTimeline tl;
    tl.resource = ResourceId(static_cast<std::int32_t>(ri));
    tl.name = topo.resource(tl.resource).name;
    tl.capacity = topo.resource(tl.resource).capacity;
    tl.bytes = report.link_usage[ri].bytes;
    tl.active = report.link_usage[ri].active;
    tl.samples = std::move(samples[ri]);
    out.push_back(std::move(tl));
  }
  return out;
}

std::string TimelinesToCsv(const std::vector<LinkTimeline>& timelines) {
  std::ostringstream os;
  os << "resource,name,t_us,rate_bytes_per_us\n";
  for (const LinkTimeline& tl : timelines) {
    for (const LinkTimeline::Sample& s : tl.samples) {
      os << tl.resource.value << "," << tl.name << ","
         << FormatDouble(s.t.us()) << "," << FormatDouble(s.rate) << "\n";
    }
  }
  return os.str();
}

}  // namespace resccl::obs
